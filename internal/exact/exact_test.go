package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/kernels"
	"regimap/internal/maperr"
	"regimap/internal/sim"
)

func kernel(t *testing.T, name string) *dfg.DFG {
	t.Helper()
	k, ok := kernels.ByName(name)
	if !ok {
		t.Fatalf("kernel %s missing", name)
	}
	return k.Build()
}

// chain builds a tiny straight-line kernel: in -> add -> mul -> out-ish.
func chain() *dfg.DFG {
	b := dfg.NewBuilder("chain")
	in := b.Input("in")
	c := b.Const("c", 3)
	a := b.Op(dfg.Add, "a", in, c)
	m := b.Op(dfg.Mul, "m", a, c)
	b.Op(dfg.Add, "z", m, a)
	return b.Build()
}

func TestMapChainOptimal(t *testing.T) {
	d := chain()
	c := arch.NewMesh(4, 4, 4)
	m, st, err := Map(context.Background(), d, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no mapping")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Check(m, 4); err != nil {
		t.Fatal(err)
	}
	mii, ii, proven := st.Cert.Gap()
	if !proven {
		t.Fatalf("optimality not proven: %+v", st.Cert)
	}
	if ii != mii {
		t.Fatalf("II=%d > MII=%d on an uncontended fabric", ii, mii)
	}
}

func TestSuiteKernelsAtMII(t *testing.T) {
	c := arch.NewMesh(4, 4, 4)
	names := []string{"dotprod_sat", "autocorr_sat", "newton_recip", "iir_biquad", "mcf_relax", "lut_map"}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			d := kernel(t, name)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			m, st, err := Map(ctx, d, c, Options{})
			if err != nil {
				t.Fatalf("err: %v (cert %+v)", err, st.Cert)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := sim.Check(m, 4); err != nil {
				t.Fatal(err)
			}
			if st.Cert.OptimalII == 0 {
				t.Fatalf("no optimality proof: %+v", st.Cert)
			}
			t.Logf("MII=%d II=%d vars=%d clauses=%d conflicts=%d",
				st.Cert.MII, st.Cert.BestII, st.Cert.PerII[len(st.Cert.PerII)-1].Vars,
				st.Cert.PerII[len(st.Cert.PerII)-1].Clauses, st.Cert.Conflicts)
		})
	}
}

func TestCertificateDeterminism(t *testing.T) {
	d := kernel(t, "dotprod_sat")
	c := arch.NewMesh(4, 4, 4)
	run := func(seed int64) Certificate {
		_, st, err := Map(context.Background(), d, c, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cert
	}
	a, b := run(0), run(0)
	// Scrub wall-clock fields; everything else must be identical.
	scrub := func(c *Certificate) {
		for i := range c.PerII {
			c.PerII[i].Elapsed = 0
		}
	}
	scrub(&a)
	scrub(&b)
	if a.MII != b.MII || a.BestII != b.BestII || a.OptimalII != b.OptimalII ||
		a.ProvenLowerBound != b.ProvenLowerBound || a.Conflicts != b.Conflicts ||
		a.Decisions != b.Decisions || a.Restarts != b.Restarts {
		t.Fatalf("same seed, different certificates:\n%+v\n%+v", a, b)
	}
	// A different seed may search differently but must reach the same verdicts.
	c2 := run(77)
	if c2.MII != a.MII || c2.BestII != a.BestII || c2.OptimalII != a.OptimalII ||
		c2.ProvenLowerBound != a.ProvenLowerBound {
		t.Fatalf("seed changed the verdicts:\n%+v\n%+v", a, c2)
	}
}

// diamonds builds n independent diamonds a->b->c plus a->c. The long edge
// a->c always spans >= 2 cycles, so each diamond pins one register on its
// producer's PE (routing disabled), and n diamonds need n registers total.
func diamonds(n int) *dfg.DFG {
	b := dfg.NewBuilder("diamonds")
	for i := 0; i < n; i++ {
		in := b.Input("in" + string(rune('a'+i)))
		m := b.Op(dfg.Neg, "m"+string(rune('a'+i)), in)
		b.Op(dfg.Add, "z"+string(rune('a'+i)), in, m)
	}
	return b.Build()
}

func TestLowerBoundOnTinyFabric(t *testing.T) {
	// Three registers of demand on a fabric with two: UNSAT at MII for a
	// structural reason (register files), certified and raising the bound.
	d := diamonds(3)
	c := arch.NewMesh(1, 2, 1)
	pes, memSlots := c.MIIResources()
	mii := d.MII(pes, memSlots)
	_, st, err := Map(context.Background(), d, c, Options{RouteHops: -1, MaxII: mii})
	if err == nil {
		t.Fatal("want a mapping failure")
	}
	if !errors.Is(err, maperr.ErrNoMapping) {
		t.Fatalf("want ErrNoMapping, got %v", err)
	}
	if st.Cert.ProvenLowerBound != mii+1 {
		t.Fatalf("UNSAT at MII=%d should prove lower bound %d: %+v", mii, mii+1, st.Cert)
	}
	if st.Cert.LowerBoundClass != LowerBoundChain {
		t.Fatalf("raised bound must be chain-class, got %q", st.Cert.LowerBoundClass)
	}
	if len(st.Cert.PerII) != 1 || st.Cert.PerII[0].Status != "unsat" {
		t.Fatalf("want one unsat verdict, got %+v", st.Cert.PerII)
	}
}

func TestContextCancellation(t *testing.T) {
	d := kernel(t, "sobel")
	c := arch.NewMesh(4, 4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Map(ctx, d, c, Options{})
	if err == nil {
		t.Fatal("cancelled context must abort")
	}
	if !errors.Is(err, maperr.ErrAborted) {
		t.Fatalf("want ErrAborted, got %T: %v", err, err)
	}
}
