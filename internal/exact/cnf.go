package exact

import "regimap/internal/sat"

// ml is a "maybe literal": a SAT literal or a constant. Window boundaries
// make many order-encoding literals constant (T >= Lo is always true,
// T >= Hi+1 always false), and threading constants through the clause
// builder keeps every emitter uniform instead of special-casing edges of
// every window.
type ml struct {
	l sat.Lit
	k int8 // 0: variable literal, +1: constant true, -1: constant false
}

var (
	mTrue  = ml{k: 1}
	mFalse = ml{k: -1}
)

func mv(l sat.Lit) ml { return ml{l: l} }

func mnot(m ml) ml {
	if m.k != 0 {
		return ml{k: -m.k}
	}
	return ml{l: m.l.Not()}
}

// clause emits the disjunction of ms: constant-true members satisfy it
// (nothing emitted), constant-false members are dropped, and an all-false
// clause marks the instance unsatisfiable (sat.AddClause of zero literals).
func (p *problem) clause(ms ...ml) {
	p.scratch = p.scratch[:0]
	for _, m := range ms {
		switch m.k {
		case 1:
			return
		case 0:
			p.scratch = append(p.scratch, m.l)
		}
	}
	p.s.AddClause(p.scratch...)
}

// atMostOne constrains at most one of lits to be true: pairwise for short
// lists, sequential counter beyond that.
func (p *problem) atMostOne(lits []sat.Lit) {
	if len(lits) <= 1 {
		return
	}
	if len(lits) <= 12 {
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				p.s.AddClause(lits[i].Not(), lits[j].Not())
			}
		}
		return
	}
	p.atMostK(lits, 1)
}

// atMostK constrains sum(lits) <= k with the Sinz sequential counter:
// s[i][j] means "at least j+1 of the first i+1 inputs are true".
func (p *problem) atMostK(lits []sat.Lit, k int) {
	if k < 0 {
		k = 0
	}
	if len(lits) <= k {
		return
	}
	if k == 0 {
		for _, l := range lits {
			p.s.AddClause(l.Not())
		}
		return
	}
	var prev []sat.Lit
	for i, x := range lits {
		if i == len(lits)-1 {
			// The last counter column is only needed for the overflow clause.
			if prev != nil {
				p.s.AddClause(x.Not(), prev[k-1].Not())
			}
			return
		}
		cur := make([]sat.Lit, k)
		for j := range cur {
			cur[j] = sat.Pos(p.s.NewVar())
		}
		p.s.AddClause(x.Not(), cur[0])
		if prev != nil {
			for j := 0; j < k; j++ {
				p.s.AddClause(prev[j].Not(), cur[j])
			}
			for j := 1; j < k; j++ {
				p.s.AddClause(x.Not(), prev[j-1].Not(), cur[j])
			}
			p.s.AddClause(x.Not(), prev[k-1].Not())
		}
		prev = cur
	}
}
