package core

import (
	"math/rand"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/mapping"
	"regimap/internal/sched"
)

// TestCompatAgainstValidatorOracle is the compatibility graph's ground-truth
// check: for random small kernels and schedules, a pair of bindings is
// compatible if and only if the two-operation partial mapping extends the
// independent mapping validator's rules (evaluated on a two-op sub-kernel).
// This pins the Appendix A.2 construction to the machine model rather than
// to our own reading of it.
func TestCompatAgainstValidatorOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	c := arch.NewMesh(2, 2, 2)
	for trial := 0; trial < 40; trial++ {
		d := randomKernel(rng)
		sc := sched.New(d, c.NumPEs(), c.Rows)
		mii := sc.MII()
		res, err := sc.ScheduleMinII(mii, mii+6, sched.Options{})
		if err != nil {
			continue
		}
		cg, err := BuildCompat(d, c, res.Time, res.II, CompatOptions{})
		if err != nil {
			continue
		}
		// Sample binding pairs and compare against the oracle.
		for probe := 0; probe < 200; probe++ {
			i := rng.Intn(cg.Nodes())
			j := rng.Intn(cg.Nodes())
			if i == j || cg.Pairs[i].Op == cg.Pairs[j].Op {
				continue
			}
			got := cg.G.Adjacent(i, j)
			want := oracleCompatible(d, c, res, cg.Pairs[i], cg.Pairs[j])
			if got != want {
				t.Fatalf("trial %d: pair (%s@PE%d, %s@PE%d) compat=%v oracle=%v\nschedule=%v II=%d",
					trial,
					d.Nodes[cg.Pairs[i].Op].Name, cg.Pairs[i].PE,
					d.Nodes[cg.Pairs[j].Op].Name, cg.Pairs[j].PE,
					got, want, res.Time, res.II)
			}
		}
	}
}

// oracleCompatible evaluates the machine rules directly for two bindings:
// distinct resources, bus exclusivity, and for every dependence between the
// two operations the forwarding/register-carrying constraints the validator
// enforces. Register capacity is deliberately excluded (the clique encodes
// it as weights, not adjacency).
func oracleCompatible(d *dfg.DFG, c *arch.CGRA, res *sched.Result, a, b Pair) bool {
	m := mapping.New(d, c, res.II)
	copy(m.Time, res.Time)
	// Same (PE, slot)?
	if a.PE == b.PE && res.Time[a.Op]%res.II == res.Time[b.Op]%res.II {
		return false
	}
	// Shared row bus?
	if d.Nodes[a.Op].Kind.IsMem() && d.Nodes[b.Op].Kind.IsMem() &&
		res.Time[a.Op]%res.II == res.Time[b.Op]%res.II &&
		c.RowOf(a.PE) == c.RowOf(b.PE) {
		return false
	}
	// Dependence rules, both directions.
	for _, e := range d.Edges {
		var prodPE, consPE int
		switch {
		case e.From == a.Op && e.To == b.Op:
			prodPE, consPE = a.PE, b.PE
		case e.From == b.Op && e.To == a.Op:
			prodPE, consPE = b.PE, a.PE
		default:
			continue
		}
		span := res.Time[e.To] - res.Time[e.From] + res.II*e.Dist
		if span == 1 {
			if !c.Connected(prodPE, consPE) {
				return false
			}
		} else if prodPE != consPE {
			return false
		}
	}
	return true
}
