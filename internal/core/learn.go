package core

import (
	"sort"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/sched"
)

// This file holds the analyses behind the learn-from-failure pass (PassLearn
// / PassRelax in pipeline.go): detecting structurally unplaceable schedules
// and choosing which edge to split, which fan-out to tree, or which load to
// recompute.

// registerBoundEdges returns, per unplaced operation, the incident edge whose
// splitting is most likely to unblock it: the longest register-carried edge
// (span > 1 under the last schedule — register demand becomes a routing hop)
// or, failing that, a one-cycle edge whose producer has the highest fan-out
// (fan-out above the mesh connectivity is the other reason placement can be
// impossible; a Route node spreads the value over two hops). The returned
// edge indices are distinct; the list is empty when nothing can be relaxed.
func registerBoundEdges(d *dfg.DFG, res *sched.Result, ii int, unplaced []int) []int {
	chosen := map[int]bool{}
	var out []int
	for _, v := range unplaced {
		bestEdge, bestSpan := -1, 1
		fanEdge, fanOut := -1, 1
		anyEdge, anyDeg := -1, -1
		consider := func(ei, other int) {
			if chosen[ei] {
				return
			}
			e := d.Edges[ei]
			if e.From == e.To {
				return // a self recurrence cannot be relaxed by routing
			}
			if span := res.Time[e.To] - res.Time[e.From] + ii*e.Dist; span > bestSpan {
				bestEdge, bestSpan = ei, span
			}
			if deg := len(d.OutEdges(e.From)); deg > fanOut && d.Nodes[e.From].Kind != dfg.Route {
				fanEdge, fanOut = ei, deg
			}
			// Last resort: relax the tightest adjacency constraint — a
			// Route node turns a one-hop reach into two hops. Splitting an
			// edge to an already-inserted route only delays, so skip those.
			if d.Nodes[other].Kind != dfg.Route {
				if deg := len(d.InEdges(other)) + len(d.OutEdges(other)); deg > anyDeg {
					anyEdge, anyDeg = ei, deg
				}
			}
		}
		for _, ei := range d.InEdges(v) {
			consider(ei, d.Edges[ei].From)
		}
		for _, ei := range d.OutEdges(v) {
			consider(ei, d.Edges[ei].To)
		}
		pick := bestEdge
		if pick < 0 {
			pick = fanEdge
		}
		if pick < 0 {
			pick = anyEdge
		}
		if pick >= 0 {
			chosen[pick] = true
			out = append(out, pick)
		}
	}
	return out
}

// overflowComponent returns the members of a register-carried component that
// cannot fit its PE at this II (more members than modulo slots, or members
// still colliding after repair) — a structural impossibility that no clique
// search can fix. It returns nil when every component fits.
func overflowComponent(d *dfg.DFG, res *sched.Result, ii int) []int {
	parent := make([]int, d.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range d.Edges {
		if e.From == e.To {
			continue
		}
		if span := res.Time[e.To] - res.Time[e.From] + ii*e.Dist; span > 1 {
			parent[find(e.From)] = find(e.To)
		}
	}
	groups := map[int][]int{}
	for v := 0; v < d.N(); v++ {
		groups[find(v)] = append(groups[find(v)], v)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		members := groups[r]
		if len(members) < 2 {
			continue
		}
		if len(members) > ii {
			return members
		}
		slots := map[int]bool{}
		for _, v := range members {
			if slots[res.Time[v]%ii] {
				return members
			}
			slots[res.Time[v]%ii] = true
		}
	}
	return nil
}

// recomputableLoad finds a load with at least two register-carried consumer
// edges incident to the failure and returns it with the longer-span half of
// its outgoing edges (for the clone to take over), or (-1, nil).
func recomputableLoad(d *dfg.DFG, res *sched.Result, ii int, unplaced []int) (int, []int) {
	inUnplaced := map[int]bool{}
	for _, v := range unplaced {
		inUnplaced[v] = true
	}
	bestLoad, bestCarried := -1, 0
	for v := range d.Nodes {
		if d.Nodes[v].Kind != dfg.Load || len(d.OutEdges(v)) < 2 || !inUnplaced[v] {
			continue
		}
		carried := 0
		for _, ei := range d.OutEdges(v) {
			if spanAt(res, ii, d.Edges[ei]) > 1 {
				carried++
			}
		}
		if carried > bestCarried {
			bestLoad, bestCarried = v, carried
		}
	}
	if bestLoad < 0 {
		return -1, nil
	}
	edges := append([]int(nil), d.OutEdges(bestLoad)...)
	sort.Slice(edges, func(i, j int) bool {
		si := spanAt(res, ii, d.Edges[edges[i]])
		sj := spanAt(res, ii, d.Edges[edges[j]])
		if si != sj {
			return si > sj
		}
		return edges[i] < edges[j]
	})
	take := (len(edges) + 1) / 2
	return bestLoad, edges[:take]
}

// meshDegree returns the largest neighbour count in the array — the number
// of PEs a value can be forwarded to in one cycle, beyond which a fan-out
// tree is required.
func meshDegree(c *arch.CGRA) int {
	deg := 0
	for p := 0; p < c.NumPEs(); p++ {
		if d := len(c.Neighbors(p)); d > deg {
			deg = d
		}
	}
	return deg
}

// fanoutProducers returns the distinct producers incident to the unplaced
// operations whose fan-out exceeds the mesh degree, largest first.
func fanoutProducers(d *dfg.DFG, unplaced []int, maxFan int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if !seen[v] && len(d.OutEdges(v)) > maxFan {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range unplaced {
		add(v)
		for _, ei := range d.InEdges(v) {
			add(d.Edges[ei].From)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := len(d.OutEdges(out[i])), len(d.OutEdges(out[j]))
		if di != dj {
			return di > dj
		}
		return out[i] < out[j]
	})
	return out
}

// splitHalfFanout moves the longer-span half of v's consumers behind a new
// Route node.
func splitHalfFanout(d *dfg.DFG, v int, res *sched.Result, ii int) {
	edges := append([]int(nil), d.OutEdges(v)...)
	// Longest spans first: those consumers benefit most from the extra hop.
	sort.Slice(edges, func(i, j int) bool {
		ei, ej := d.Edges[edges[i]], d.Edges[edges[j]]
		si := spanAt(res, ii, ei)
		sj := spanAt(res, ii, ej)
		if si != sj {
			return si > sj
		}
		return edges[i] < edges[j]
	})
	keep := len(edges) / 2
	moved := edges[:len(edges)-keep]
	// Self edges cannot move (the recurrence must stay on the op).
	filtered := moved[:0]
	for _, ei := range moved {
		if d.Edges[ei].To != v {
			filtered = append(filtered, ei)
		}
	}
	if len(filtered) == 0 {
		return
	}
	d.SplitFanout(v, filtered)
}

func spanAt(res *sched.Result, ii int, e dfg.Edge) int {
	return res.Time[e.To] - res.Time[e.From] + ii*e.Dist
}
