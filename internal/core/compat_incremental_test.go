package core

import (
	"math/rand"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/sched"
)

// sameCompat fails the test unless the two compatibility graphs agree on
// every observable: candidate pairs, adjacency, directed weights, and bases.
func sameCompat(t *testing.T, trial, round int, got, want *Compat) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("trial %d round %d: %d pairs incrementally vs %d from scratch",
			trial, round, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("trial %d round %d: pair %d is %+v incrementally vs %+v from scratch",
				trial, round, i, got.Pairs[i], want.Pairs[i])
		}
		if got.G.Base(i) != want.G.Base(i) {
			t.Fatalf("trial %d round %d: base(%d) = %d incrementally vs %d from scratch",
				trial, round, i, got.G.Base(i), want.G.Base(i))
		}
	}
	for i := range got.Pairs {
		for j := range got.Pairs {
			if i == j {
				continue
			}
			if i < j && got.G.Adjacent(i, j) != want.G.Adjacent(i, j) {
				t.Fatalf("trial %d round %d: adjacency (%d,%d) = %v incrementally vs %v from scratch",
					trial, round, i, j, got.G.Adjacent(i, j), want.G.Adjacent(i, j))
			}
			if got.G.Weight(i, j) != want.G.Weight(i, j) {
				t.Fatalf("trial %d round %d: weight (%d->%d) = %d incrementally vs %d from scratch",
					trial, round, i, j, got.G.Weight(i, j), want.G.Weight(i, j))
			}
		}
	}
}

// perturbSchedule moves up to moves random operations by small deltas while
// keeping every dependence span legal — a stand-in for the mapping loop's
// reschedules. It returns false when no valid perturbation was found.
func perturbSchedule(rng *rand.Rand, d *dfg.DFG, times []int, ii, moves int) bool {
	changed := false
	for m := 0; m < moves; m++ {
		v := rng.Intn(d.N())
		delta := rng.Intn(5) - 2
		if delta == 0 {
			continue
		}
		nt := times[v] + delta
		if nt < 0 {
			continue
		}
		ok := true
		for _, e := range d.Edges {
			if e.From != v && e.To != v {
				continue
			}
			from, to := times[e.From], times[e.To]
			if e.From == v {
				from = nt
			}
			if e.To == v {
				to = nt
			}
			if to-from+ii*e.Dist < d.Nodes[e.From].Kind.Latency() {
				ok = false
				break
			}
		}
		if ok {
			times[v] = nt
			changed = true
		}
	}
	return changed
}

// TestCompatBuilderIncrementalMatchesScratch drives one CompatBuilder through
// sequences of simulated reschedules — small moves that exercise the
// changed-rows path and large ones that trip the full-rebuild fallback — and
// checks every incremental Build against a from-scratch BuildCompat of the
// same schedule.
func TestCompatBuilderIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	c := arch.NewMesh(3, 3, 4)
	trials := 0
	for attempt := 0; attempt < 200 && trials < 25; attempt++ {
		d := randomKernel(rng)
		sc := sched.New(d, c.NumPEs(), c.Rows)
		mii := sc.MII()
		res, err := sc.ScheduleMinII(mii, mii+6, sched.Options{})
		if err != nil {
			continue
		}
		trials++
		b, err := NewCompatBuilder(d, c, res.II, CompatOptions{})
		if err != nil {
			t.Fatalf("trial %d: NewCompatBuilder: %v", trials, err)
		}
		times := append([]int(nil), res.Time...)
		for round := 0; round < 12; round++ {
			if round > 0 {
				// Alternate between a handful of moved ops (incremental row
				// rebuild) and a broad shake-up (full-rebuild fallback).
				moves := 1 + rng.Intn(2)
				if round%4 == 3 {
					moves = d.N()
				}
				perturbSchedule(rng, d, times, res.II, moves)
			}
			got, err := b.Build(times)
			if err != nil {
				t.Fatalf("trial %d round %d: incremental Build: %v", trials, round, err)
			}
			want, err := BuildCompat(d, c, times, res.II, CompatOptions{})
			if err != nil {
				t.Fatalf("trial %d round %d: scratch BuildCompat: %v", trials, round, err)
			}
			sameCompat(t, trials, round, got, want)
		}
	}
	if trials < 10 {
		t.Fatalf("only %d schedulable trials out of 200 attempts", trials)
	}
}

// TestCompatBuilderRecoversAfterError checks that a rejected schedule leaves
// the builder untouched: the next valid Build must still match from-scratch.
func TestCompatBuilderRecoversAfterError(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	c := arch.NewMesh(2, 2, 4)
	for attempt := 0; attempt < 50; attempt++ {
		d := randomKernel(rng)
		sc := sched.New(d, c.NumPEs(), c.Rows)
		mii := sc.MII()
		res, err := sc.ScheduleMinII(mii, mii+6, sched.Options{})
		if err != nil {
			continue
		}
		b, err := NewCompatBuilder(d, c, res.II, CompatOptions{})
		if err != nil {
			t.Fatalf("NewCompatBuilder: %v", err)
		}
		if _, err := b.Build(res.Time); err != nil {
			t.Fatalf("first Build: %v", err)
		}
		// An unscheduled op and a span-violating schedule must both error out.
		bad := append([]int(nil), res.Time...)
		bad[0] = -1
		if _, err := b.Build(bad); err == nil {
			t.Fatal("Build accepted an unscheduled op")
		}
		times := append([]int(nil), res.Time...)
		perturbSchedule(rng, d, times, res.II, 2)
		got, err := b.Build(times)
		if err != nil {
			t.Fatalf("Build after error: %v", err)
		}
		want, err := BuildCompat(d, c, times, res.II, CompatOptions{})
		if err != nil {
			t.Fatalf("scratch BuildCompat: %v", err)
		}
		sameCompat(t, attempt, 0, got, want)
		return
	}
	t.Skip("no schedulable random kernel found")
}
