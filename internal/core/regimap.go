package core

import (
	"context"
	"time"

	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/dfg"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/obs"
)

// The mapper's failures carry the shared error taxonomy of
// regimap/internal/maperr, re-exported here so callers of core need not
// import both packages:
//
//	errors.Is(err, core.ErrNoMapping)  — the search space was exhausted
//	errors.Is(err, core.ErrAborted)    — the context was cancelled (the ctx
//	                                     error is also in the wrap chain)
//	errors.As(err, *core.InvalidMappingError) — internal invariant broke
var (
	ErrNoMapping = maperr.ErrNoMapping
	ErrAborted   = maperr.ErrAborted
)

// InvalidMappingError reports a mapper-internal bug: a produced mapping that
// fails its own validation.
type InvalidMappingError = maperr.InvalidMappingError

// Options configures the REGIMap mapper. The zero value is the paper's
// configuration.
type Options struct {
	// MinII raises the II the escalation starts from (0: MII). The portfolio
	// runner pins MinII == MaxII to race diversified attempts at one fixed II.
	MinII int
	// MaxII caps II escalation (0: MII + 32).
	MaxII int
	// MaxAttemptsPerII bounds schedule/place rounds at one II (0: |V|/2+16).
	MaxAttemptsPerII int
	// MaxTotalAttempts bounds schedule/place rounds across the whole II
	// escalation, capping worst-case compile time on unmappable kernels
	// (0: 12|V|+48).
	MaxTotalAttempts int
	// DisableReschedule turns off learning from failure: a placement failure
	// immediately escalates II, like the exploratory mappers the paper
	// criticizes (the Section 6.3 ablation).
	DisableReschedule bool
	// DisableThinning turns off the virtual-resource-reduction heuristic
	// (the second learning move of Section 6.3).
	DisableThinning bool
	// DisableRouteInsertion turns off the routing-node relaxation used when
	// placement fails for lack of registers.
	DisableRouteInsertion bool
	// Compat tunes compatibility-graph construction.
	Compat CompatOptions
	// Clique tunes the clique search.
	Clique clique.Options
}

// Stats reports how a mapping attempt went.
type Stats struct {
	MII          int
	II           int // achieved II (0 when mapping failed)
	Attempts     int // schedule+place rounds across all IIs
	Reschedules  int // rounds triggered by learn-from-failure
	Thinnings    int // width reductions
	RouteInserts int // routing nodes added to relax register pressure
	Recomputes   int // loads cloned for recomputation
	CompatNodes  int // size of the last compatibility graph
	CompatEdges  int
	Elapsed      time.Duration
}

// Perf returns the paper's performance metric MII/II (1.0 = optimal), or 0
// if the mapping failed.
func (s *Stats) Perf() float64 {
	if s.II == 0 {
		return 0
	}
	return float64(s.MII) / float64(s.II)
}

// Map runs REGIMap as a pipeline of explicit passes (see pipeline.go):
// modulo-schedule the kernel, build the compatibility graph, place it with
// the weight-constrained maximal clique, and on failure learn — reschedule
// the unplaced operations earlier / at higher priority, insert routing nodes
// when registers are the bottleneck, thin the schedule width, and only then
// escalate II. The returned mapping's DFG may contain extra Route
// operations; it always passes mapping.Validate.
//
// Cancelling ctx aborts the search within one schedule/place attempt: the
// context is checked before every II escalation and before every attempt
// within an II, so a deadline bounds compile time even on unmappable kernels
// where MaxTotalAttempts would otherwise be the only backstop. The returned
// error wraps ctx.Err() when the abort was context-driven.
//
// A tracer in ctx (obs.With) receives per-pass and per-II-attempt events;
// without one, the instrumentation is free (see internal/obs).
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*mapping.Mapping, *Stats, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	tr := obs.From(ctx).Named("regimap", d.Name)
	pes, memRows := c.MIIResources()
	stats := &Stats{MII: d.MII(pes, memRows)}
	tr.Point1("mii", "mii", int64(stats.MII))
	done := func() {
		stats.Elapsed = time.Since(start)
		tr.Point("map.done", "ii", int64(stats.II), "mii", int64(stats.MII), "attempts", int64(stats.Attempts))
	}
	if !c.Healthy() || !c.TrivialBuses() {
		if c.UsablePEs() == 0 {
			done()
			return nil, stats, maperr.NoMapping("core: no mapping for %s on %s: every PE is broken", d.Name, c)
		}
		if c.MemSlotCapacity() == 0 && hasMemOps(d) {
			done()
			return nil, stats, maperr.NoMapping("core: no mapping for %s on %s: no bus can issue memory operations", d.Name, c)
		}
	}
	maxII := opts.MaxII
	if maxII <= 0 {
		maxII = stats.MII + 16
	}
	startII := stats.MII
	if opts.MinII > startII {
		startII = opts.MinII
	}
	maxAttempts := opts.MaxAttemptsPerII
	if maxAttempts <= 0 {
		maxAttempts = d.N()/2 + 16
	}
	totalBudget := opts.MaxTotalAttempts
	if totalBudget <= 0 {
		totalBudget = 8*d.N() + 32
	}

	for ii := startII; ii <= maxII && stats.Attempts < totalBudget; ii++ {
		if err := ctx.Err(); err != nil {
			done()
			return nil, stats, maperr.Aborted(err, "core: mapping %s aborted: %v", d.Name, err)
		}
		budget := maxAttempts
		if rest := totalBudget - stats.Attempts; rest < budget {
			budget = rest
		}
		rounds := stats.Attempts
		iisp := tr.Start("ii.attempt")
		m := mapAtII(ctx, d, c, ii, budget, opts, stats, tr)
		iisp.Field("ii", int64(ii))
		iisp.Field("rounds", int64(stats.Attempts-rounds))
		iisp.FieldBool("ok", m != nil)
		iisp.End()
		if m != nil {
			stats.II = ii
			done()
			if err := m.Validate(); err != nil {
				return nil, nil, &maperr.InvalidMappingError{Mapper: "core", What: "mapping", Err: err}
			}
			return m, stats, nil
		}
	}
	done()
	if err := ctx.Err(); err != nil {
		return nil, stats, maperr.Aborted(err, "core: mapping %s aborted: %v", d.Name, err)
	}
	return nil, stats, maperr.NoMapping("core: no mapping for %s on %s up to II=%d", d.Name, c, maxII)
}

// hasMemOps reports whether the kernel contains any load or store.
func hasMemOps(d *dfg.DFG) bool {
	for _, nd := range d.Nodes {
		if nd.Kind.IsMem() {
			return true
		}
	}
	return false
}

// mapAtII attempts to map at one fixed II by driving the pass pipeline over
// a fresh Attempt, returning nil to escalate. A cancelled ctx ends the
// attempt loop early (the caller reports the abort).
//
// The pipeline order per round is the paper's Figure 3 loop:
//
//	PassSchedule → PassPrecheck → PassCompat → PassPlace → PassLearn
//
// with PassLearn (and the precheck shortcuts) feeding the next round's
// schedule until the round budget is spent or learning concludes the II must
// escalate.
func mapAtII(ctx context.Context, d *dfg.DFG, c *arch.CGRA, ii, maxAttempts int, opts Options, stats *Stats, tr *obs.Tracer) *mapping.Mapping {
	a := NewAttempt(d, c, ii, opts, stats, tr)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		stats.Attempts++
		res := a.PassSchedule()
		if res == nil {
			return nil // unschedulable at this width: escalate II
		}
		skip, proceed := a.PassPrecheck(res)
		if !proceed {
			// Placement is pointless (duplicate schedule, or a register-
			// carried component that cannot fit a PE): go straight to the
			// stronger relaxations.
			if !a.PassRelax(res, skip) {
				return nil
			}
			continue
		}
		cg, err := a.PassCompat(res)
		if err != nil {
			return nil
		}
		m, unplaced := a.PassPlace(ctx, cg, res)
		if m != nil {
			return m
		}
		if opts.DisableReschedule {
			return nil // exploratory behaviour: fail straight to II+1
		}
		if !a.PassLearn(res, unplaced) {
			return nil
		}
	}
	return nil
}
