package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/dfg"
	"regimap/internal/maperr"
	"regimap/internal/mapping"
	"regimap/internal/sched"
)

// The mapper's failures carry the shared error taxonomy of
// regimap/internal/maperr, re-exported here so callers of core need not
// import both packages:
//
//	errors.Is(err, core.ErrNoMapping)  — the search space was exhausted
//	errors.Is(err, core.ErrAborted)    — the context was cancelled (the ctx
//	                                     error is also in the wrap chain)
//	errors.As(err, *core.InvalidMappingError) — internal invariant broke
var (
	ErrNoMapping = maperr.ErrNoMapping
	ErrAborted   = maperr.ErrAborted
)

// InvalidMappingError reports a mapper-internal bug: a produced mapping that
// fails its own validation.
type InvalidMappingError = maperr.InvalidMappingError

// Options configures the REGIMap mapper. The zero value is the paper's
// configuration.
type Options struct {
	// MinII raises the II the escalation starts from (0: MII). The portfolio
	// runner pins MinII == MaxII to race diversified attempts at one fixed II.
	MinII int
	// MaxII caps II escalation (0: MII + 32).
	MaxII int
	// MaxAttemptsPerII bounds schedule/place rounds at one II (0: |V|/2+16).
	MaxAttemptsPerII int
	// MaxTotalAttempts bounds schedule/place rounds across the whole II
	// escalation, capping worst-case compile time on unmappable kernels
	// (0: 12|V|+48).
	MaxTotalAttempts int
	// DisableReschedule turns off learning from failure: a placement failure
	// immediately escalates II, like the exploratory mappers the paper
	// criticizes (the Section 6.3 ablation).
	DisableReschedule bool
	// DisableThinning turns off the virtual-resource-reduction heuristic
	// (the second learning move of Section 6.3).
	DisableThinning bool
	// DisableRouteInsertion turns off the routing-node relaxation used when
	// placement fails for lack of registers.
	DisableRouteInsertion bool
	// Compat tunes compatibility-graph construction.
	Compat CompatOptions
	// Clique tunes the clique search.
	Clique clique.Options
}

// Stats reports how a mapping attempt went.
type Stats struct {
	MII          int
	II           int // achieved II (0 when mapping failed)
	Attempts     int // schedule+place rounds across all IIs
	Reschedules  int // rounds triggered by learn-from-failure
	Thinnings    int // width reductions
	RouteInserts int // routing nodes added to relax register pressure
	Recomputes   int // loads cloned for recomputation
	CompatNodes  int // size of the last compatibility graph
	CompatEdges  int
	Elapsed      time.Duration
}

// Perf returns the paper's performance metric MII/II (1.0 = optimal), or 0
// if the mapping failed.
func (s *Stats) Perf() float64 {
	if s.II == 0 {
		return 0
	}
	return float64(s.MII) / float64(s.II)
}

// Map runs REGIMap: modulo-schedule the kernel, place it with the
// weight-constrained maximal clique, and on failure learn — reschedule the
// unplaced operations earlier / at higher priority, insert routing nodes when
// registers are the bottleneck, thin the schedule width, and only then
// escalate II. The returned mapping's DFG may contain extra Route operations;
// it always passes mapping.Validate.
//
// Cancelling ctx aborts the search within one schedule/place attempt: the
// context is checked before every II escalation and before every attempt
// within an II, so a deadline bounds compile time even on unmappable kernels
// where MaxTotalAttempts would otherwise be the only backstop. The returned
// error wraps ctx.Err() when the abort was context-driven.
func Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, opts Options) (*mapping.Mapping, *Stats, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	pes, memRows := c.MIIResources()
	stats := &Stats{MII: d.MII(pes, memRows)}
	if !c.Healthy() {
		if c.UsablePEs() == 0 {
			stats.Elapsed = time.Since(start)
			return nil, stats, maperr.NoMapping("core: no mapping for %s on %s: every PE is broken", d.Name, c)
		}
		if c.UsableMemRows() == 0 && hasMemOps(d) {
			stats.Elapsed = time.Since(start)
			return nil, stats, maperr.NoMapping("core: no mapping for %s on %s: no row can issue memory operations", d.Name, c)
		}
	}
	maxII := opts.MaxII
	if maxII <= 0 {
		maxII = stats.MII + 16
	}
	startII := stats.MII
	if opts.MinII > startII {
		startII = opts.MinII
	}
	maxAttempts := opts.MaxAttemptsPerII
	if maxAttempts <= 0 {
		maxAttempts = d.N()/2 + 16
	}
	totalBudget := opts.MaxTotalAttempts
	if totalBudget <= 0 {
		totalBudget = 8*d.N() + 32
	}

	for ii := startII; ii <= maxII && stats.Attempts < totalBudget; ii++ {
		if err := ctx.Err(); err != nil {
			stats.Elapsed = time.Since(start)
			return nil, stats, maperr.Aborted(err, "core: mapping %s aborted: %v", d.Name, err)
		}
		budget := maxAttempts
		if rest := totalBudget - stats.Attempts; rest < budget {
			budget = rest
		}
		m := mapAtII(ctx, d, c, ii, budget, opts, stats)
		if m != nil {
			stats.II = ii
			stats.Elapsed = time.Since(start)
			if err := m.Validate(); err != nil {
				return nil, nil, &maperr.InvalidMappingError{Mapper: "core", What: "mapping", Err: err}
			}
			return m, stats, nil
		}
	}
	stats.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, stats, maperr.Aborted(err, "core: mapping %s aborted: %v", d.Name, err)
	}
	return nil, stats, maperr.NoMapping("core: no mapping for %s on %s up to II=%d", d.Name, c, maxII)
}

// hasMemOps reports whether the kernel contains any load or store.
func hasMemOps(d *dfg.DFG) bool {
	for _, nd := range d.Nodes {
		if nd.Kind.IsMem() {
			return true
		}
	}
	return false
}

// iiAttempt holds the mutable state of one fixed-II mapping attempt.
type iiAttempt struct {
	d  *dfg.DFG // original kernel
	ds *dfg.DFG // work DFG (route nodes may be inserted)
	c  *arch.CGRA
	sc *sched.Scheduler
	ii int

	pes     int // usable PEs (== NumPEs on a healthy array)
	memRows int // usable memory rows (== Rows on a healthy array)

	width        int
	routeBudget  int
	reserve      int // extra insertions granted to nearly-complete placements
	bestUnplaced int // the paper's N: best |V_Ds - V_C| so far
	stall        int // consecutive non-improving placement attempts
	prefer       []int
	prevSchedule *sched.Result
	prevUnplaced []int

	compatOpts CompatOptions
	cb         *CompatBuilder // incremental compat builder for the current work DFG
	cbFor      *dfg.DFG       // the DFG cb was built for (route insertion replaces it)
	cbNodes    int            // node count cb was sized for (in-place growth invalidates)
}

// compat returns the compatibility graph for the schedule, building it
// incrementally: the builder persists across attempts at this II and only
// rebuilds the rows of rescheduled operations. Structural learning moves
// (route insertion, recomputation) grow the work DFG — sometimes by mutating
// the already-cloned DFG in place — so the builder is invalidated both on
// identity change and on node-count change.
func (a *iiAttempt) compat(times []int) (*Compat, error) {
	if a.cb == nil || a.cbFor != a.ds || a.cbNodes != a.ds.N() {
		cb, err := NewCompatBuilder(a.ds, a.c, a.ii, a.compatOpts)
		if err != nil {
			return nil, err
		}
		a.cb, a.cbFor, a.cbNodes = cb, a.ds, a.ds.N()
	}
	return a.cb.Build(times)
}

// mapAtII attempts to map at one fixed II, returning nil to escalate. A
// cancelled ctx ends the attempt loop early (the caller reports the abort).
func mapAtII(ctx context.Context, d *dfg.DFG, c *arch.CGRA, ii, maxAttempts int, opts Options, stats *Stats) *mapping.Mapping {
	pes, memRows := c.MIIResources()
	a := &iiAttempt{
		d: d, ds: d, c: c,
		sc:           sched.New(d, pes, memRows),
		ii:           ii,
		pes:          pes,
		memRows:      memRows,
		width:        pes,
		routeBudget:  routeBudgetFor(d.N()),
		reserve:      8,
		bestUnplaced: math.MaxInt,
		compatOpts:   opts.Compat,
	}
	seen := map[string]bool{} // schedules already placed (and failed)

	for attempt := 0; attempt < maxAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		stats.Attempts++
		res := scheduleNext(a.sc, a.ds, ii, a.width, a.prefer, a.prevSchedule, a.prevUnplaced, a.width, seen)
		if res == nil {
			return nil // unschedulable at this width: escalate II
		}
		key := scheduleKey(a.width, res)
		if seen[key] {
			// Every scheduling variant regenerated an already-failed
			// schedule; placement would fail identically, so skip straight
			// to the stronger relaxations.
			if !a.relaxOrThin(res, a.prevUnplaced, opts, stats) {
				return nil
			}
			continue
		}
		seen[key] = true

		if overflow := overflowComponent(a.ds, res, ii); overflow != nil && !opts.DisableReschedule {
			// A register-carried component larger than II can never share a
			// PE: skip the doomed clique search and relax immediately.
			if !a.relaxOrThin(res, overflow, opts, stats) {
				return nil
			}
			continue
		}

		cg, err := a.compat(res.Time)
		if err != nil {
			return nil
		}
		stats.CompatNodes = cg.Nodes()
		stats.CompatEdges = cg.Edges()
		sol := findPlacement(cg, a.ds.N(), res.Time, opts.Clique)
		if len(sol) == a.ds.N() {
			m := mapping.New(a.ds, c, ii)
			copy(m.Time, res.Time)
			for _, id := range sol {
				m.PE[cg.Pairs[id].Op] = cg.Pairs[id].PE
			}
			return m
		}
		if opts.DisableReschedule {
			return nil // exploratory behaviour: fail straight to II+1
		}

		unplaced := unplacedOps(a.ds.N(), cg, sol)
		if len(unplaced) >= a.bestUnplaced {
			// Give the cheap rescheduling moves a little patience before
			// reaching for the structural relaxations.
			a.stall++
			if a.stall >= 3 {
				if !a.relaxOrThin(res, unplaced, opts, stats) {
					return nil
				}
				continue
			}
		} else {
			a.bestUnplaced = len(unplaced)
			a.stall = 0
		}
		// Learning move 1: reschedule with the unplaced operations first.
		stats.Reschedules++
		a.prefer = unplaced
		a.prevSchedule = res
		a.prevUnplaced = unplaced
	}
	return nil
}

// routeBudgetFor caps routing-node insertions per II attempt: generous for
// small kernels, bounded for large ones so the work DFG cannot snowball
// (every insertion enlarges the compatibility graph the clique search pays
// for).
func routeBudgetFor(n int) int {
	if n < 12 {
		return 2 * n
	}
	if n > 24 {
		return 24
	}
	return n
}

// reset clears the per-schedule learning state after a structural change
// (route insertion or thinning).
func (a *iiAttempt) reset() {
	a.prefer, a.prevSchedule, a.prevUnplaced = nil, nil, nil
	a.bestUnplaced = math.MaxInt
}

// relaxOrThin applies the stronger learning moves when rescheduling stopped
// converging: first relax the routing problem by splitting a register-bound
// edge with a Route node (Appendix E), then thin the schedule width. It
// returns false when both are exhausted and II must escalate.
func (a *iiAttempt) relaxOrThin(res *sched.Result, unplaced []int, opts Options, stats *Stats) bool {
	a.stall = 0
	budget := a.routeBudget
	if budget < 0 {
		budget = 0
	}
	if len(unplaced) > 0 && len(unplaced) <= 2 && a.reserve > 0 {
		budget++ // endgame reserve: a nearly-complete placement earns extra relaxation
		a.reserve--
	}
	if !opts.DisableRouteInsertion && budget > 0 {
		changed := false
		// First shrink over-connected values: a producer whose fan-out
		// exceeds the mesh degree can never deliver all copies directly, so
		// half of its consumers are moved behind a Route node (a fan-out
		// tree, the transformation behind the paper's path sharing).
		if fanouts := fanoutProducers(a.ds, unplaced, meshDegree(a.c)); len(fanouts) > 0 {
			if a.ds == a.d {
				a.ds = a.d.Clone()
			}
			for _, v := range fanouts {
				if budget == 0 {
					break
				}
				splitHalfFanout(a.ds, v, res, a.ii)
				budget--
				a.routeBudget--
				stats.RouteInserts++
				changed = true
			}
		}
		if !changed {
			edges := registerBoundEdges(a.ds, res, a.ii, unplaced)
			if len(edges) > 3 {
				edges = edges[:3] // relax gently; each node enlarges the search
			}
			if len(edges) > 0 {
				if a.ds == a.d {
					a.ds = a.d.Clone()
				}
				for _, ei := range edges {
					if budget == 0 {
						break
					}
					a.ds.InsertRoute(ei)
					budget--
					a.routeBudget--
					stats.RouteInserts++
					changed = true
				}
			}
		}
		if !changed {
			// Recomputation (paper Section 3, Figure 4a): when no edge can
			// be routed around, clone an unplaced multi-consumer load so
			// each copy serves part of the fan-out — re-reading memory is
			// cheaper than carrying the value.
			if v, edges := recomputableLoad(a.ds, res, a.ii, unplaced); v >= 0 && budget > 0 {
				if a.ds == a.d {
					a.ds = a.d.Clone()
				}
				a.ds.Duplicate(v, edges)
				budget--
				a.routeBudget--
				stats.Recomputes++
				changed = true
			}
		}
		if changed {
			a.sc = sched.New(a.ds, a.pes, a.memRows)
			a.reset()
			return true
		}
	}
	if !opts.DisableThinning {
		a.width--
		stats.Thinnings++
		if a.width < ceilDiv(a.ds.N(), a.ii) {
			return false // thinning would force a larger II: escalate
		}
		a.reset()
		return true
	}
	return false
}

// findPlacement runs the clique search: the group-aware constructive pass
// first (one candidate per operation, most-constrained first), falling back
// to the paper's generic greedy/swap/intersection heuristic when it comes up
// short. Both return feasible cliques; the larger wins.
func findPlacement(cg *Compat, target int, times []int, opts clique.Options) []int {
	// First pass: place operations in schedule order so each lands next to
	// its already-placed producers (cluster growth); the promote-on-failure
	// rounds still reorder the stragglers.
	var sol []int
	if opts.GroupOrder == nil && len(times) == target {
		order := make([]int, target)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			if times[order[i]] != times[order[j]] {
				return times[order[i]] < times[order[j]]
			}
			return order[i] < order[j]
		})
		scheduled := opts
		scheduled.GroupOrder = order
		sol = clique.FindGrouped(cg.G, cg.byOp, scheduled)
		if len(sol) >= target {
			return sol
		}
	}
	// Second pass: depth-first dataflow order, so chains (address streams,
	// reduction spines) are placed contiguously and can fold onto one PE
	// across consecutive slots.
	if len(times) == target {
		dfs := opts
		dfs.GroupOrder = dfsOrder(cg.d)
		if alt := clique.FindGrouped(cg.G, cg.byOp, dfs); len(alt) > len(sol) {
			sol = alt
			if len(sol) >= target {
				return sol
			}
		}
	}
	// Third pass: most-constrained-first order (FindGrouped's default).
	if alt := clique.FindGrouped(cg.G, cg.byOp, opts); len(alt) > len(sol) {
		sol = alt
		if len(sol) >= target {
			return sol
		}
	}
	// The generic greedy/swap/intersection heuristic explores more of the
	// graph but scales with its square; beyond a few hundred nodes the
	// grouped passes plus the outer learning loop are the better use of time.
	if cg.Nodes() <= 384 {
		if opts.SeedOrder == nil {
			// The graph caches the degree sort, so repeated placements of an
			// unchanged (or partially-rebuilt) graph sort at most once.
			opts.SeedOrder = cg.G.DegreeOrder()
		}
		if alt := clique.Find(cg.G, target, opts); len(alt) > len(sol) {
			return alt
		}
	}
	return sol
}

// dfsOrder returns the operations in depth-first dataflow order, starting
// from the highest-degree roots, so connected chains appear consecutively.
func dfsOrder(d *dfg.DFG) []int {
	roots := make([]int, d.N())
	for i := range roots {
		roots[i] = i
	}
	deg := func(v int) int { return len(d.InEdges(v)) + len(d.OutEdges(v)) }
	sort.SliceStable(roots, func(i, j int) bool {
		if deg(roots[i]) != deg(roots[j]) {
			return deg(roots[i]) > deg(roots[j])
		}
		return roots[i] < roots[j]
	})
	seen := make([]bool, d.N())
	order := make([]int, 0, d.N())
	var visit func(v int)
	visit = func(v int) {
		if seen[v] {
			return
		}
		seen[v] = true
		order = append(order, v)
		for _, ei := range d.OutEdges(v) {
			visit(d.Edges[ei].To)
		}
		for _, ei := range d.InEdges(v) {
			visit(d.Edges[ei].From)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return order
}

// scheduleKey identifies a schedule attempt for the duplicate-detection set.
func scheduleKey(width int, res *sched.Result) string {
	return fmt.Sprintf("%d|%v", width, res.Time)
}

// scheduleNext produces the next schedule attempt, trying variants until one
// has not been seen before: the paper's local repair first (move each failed
// operation one cycle earlier, keeping everything else free), then one cycle
// later (which converts a crowded adjacency into a register-carried hop),
// then a full reschedule with the failed operations prioritized. Every
// produced schedule is post-processed by repairCarried, which separates
// register-carried components whose members collide in a modulo slot — such
// schedules can never be placed, whatever the clique search does.
func scheduleNext(sc *sched.Scheduler, d *dfg.DFG, ii, width int, prefer []int, prev *sched.Result, prevUnplaced []int, keyWidth int, seen map[string]bool) *sched.Result {
	base := sched.Options{MaxPEs: width}
	var fallback *sched.Result
	try := func(opts sched.Options) *sched.Result {
		res, err := sc.Schedule(ii, opts)
		if err != nil {
			return nil
		}
		res = repairCarried(sc, d, ii, opts, res)
		if fallback == nil {
			fallback = res
		}
		if seen[scheduleKey(keyWidth, res)] {
			return nil
		}
		return res
	}
	if prev != nil && len(prevUnplaced) > 0 {
		for _, delta := range []int{-1, +1, -2, +2} {
			pins := make(map[int]int, len(prevUnplaced))
			feasible := true
			for _, v := range prevUnplaced {
				t := prev.Time[v] + delta
				if t < 0 {
					feasible = false
					break
				}
				pins[v] = t
			}
			if !feasible {
				continue
			}
			pinned := base
			pinned.Pin = pins
			if res := try(pinned); res != nil {
				return res
			}
		}
	}
	withPrefer := base
	withPrefer.Prefer = prefer
	if res := try(withPrefer); res != nil {
		return res
	}
	if fallback != nil {
		return fallback // all variants already seen: caller will relax
	}
	return nil
}

// repairCarried constructively fixes a structural placement impossibility the
// plain modulo scheduler cannot see: operations linked by register-carried
// dependences (span > 1) must end up on one PE, so they need pairwise
// distinct modulo slots. When members of such a component collide, the later
// one is pinned one slot onward and the kernel rescheduled, a few rounds.
// The original schedule is returned when repair fails — placement will then
// fail and the outer loop tries its stronger moves.
func repairCarried(sc *sched.Scheduler, d *dfg.DFG, ii int, opts sched.Options, res *sched.Result) *sched.Result {
	for round := 0; round < 4; round++ {
		pins := carriedCollisionPins(d, res, ii)
		if len(pins) == 0 {
			return res
		}
		next := opts
		next.Pin = make(map[int]int, len(opts.Pin)+len(pins))
		for v, t := range opts.Pin {
			next.Pin[v] = t
		}
		for v, t := range pins {
			next.Pin[v] = t
		}
		fixed, err := sc.Schedule(ii, next)
		if err != nil {
			return res
		}
		opts, res = next, fixed
	}
	return res
}

// carriedCollisionPins finds register-carried components (union-find over
// span>1 edges) whose members share a modulo slot and proposes pins that
// move the later colliders to the next free slot of their component.
func carriedCollisionPins(d *dfg.DFG, res *sched.Result, ii int) map[int]int {
	parent := make([]int, d.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	carried := false
	for _, e := range d.Edges {
		if e.From == e.To {
			continue
		}
		if span := res.Time[e.To] - res.Time[e.From] + ii*e.Dist; span > 1 {
			parent[find(e.From)] = find(e.To)
			carried = true
		}
	}
	if !carried {
		return nil
	}
	groups := map[int][]int{}
	for v := 0; v < d.N(); v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	pins := map[int]int{}
	for _, members := range groups {
		if len(members) < 2 || len(members) > ii {
			continue // singleton, or unrepairable at this II
		}
		// Deterministic: earlier-scheduled members keep their slots.
		sort.Slice(members, func(i, j int) bool {
			if res.Time[members[i]] != res.Time[members[j]] {
				return res.Time[members[i]] < res.Time[members[j]]
			}
			return members[i] < members[j]
		})
		used := make([]bool, ii)
		for _, v := range members {
			t := res.Time[v]
			if !used[t%ii] {
				used[t%ii] = true
				continue
			}
			for delta := 1; delta < ii; delta++ {
				if !used[(t+delta)%ii] {
					pins[v] = t + delta
					used[(t+delta)%ii] = true
					break
				}
			}
		}
	}
	return pins
}

// registerBoundEdges returns, per unplaced operation, the incident edge whose
// splitting is most likely to unblock it: the longest register-carried edge
// (span > 1 under the last schedule — register demand becomes a routing hop)
// or, failing that, a one-cycle edge whose producer has the highest fan-out
// (fan-out above the mesh connectivity is the other reason placement can be
// impossible; a Route node spreads the value over two hops). The returned
// edge indices are distinct; the list is empty when nothing can be relaxed.
func registerBoundEdges(d *dfg.DFG, res *sched.Result, ii int, unplaced []int) []int {
	chosen := map[int]bool{}
	var out []int
	for _, v := range unplaced {
		bestEdge, bestSpan := -1, 1
		fanEdge, fanOut := -1, 1
		anyEdge, anyDeg := -1, -1
		consider := func(ei, other int) {
			if chosen[ei] {
				return
			}
			e := d.Edges[ei]
			if e.From == e.To {
				return // a self recurrence cannot be relaxed by routing
			}
			if span := res.Time[e.To] - res.Time[e.From] + ii*e.Dist; span > bestSpan {
				bestEdge, bestSpan = ei, span
			}
			if deg := len(d.OutEdges(e.From)); deg > fanOut && d.Nodes[e.From].Kind != dfg.Route {
				fanEdge, fanOut = ei, deg
			}
			// Last resort: relax the tightest adjacency constraint — a
			// Route node turns a one-hop reach into two hops. Splitting an
			// edge to an already-inserted route only delays, so skip those.
			if d.Nodes[other].Kind != dfg.Route {
				if deg := len(d.InEdges(other)) + len(d.OutEdges(other)); deg > anyDeg {
					anyEdge, anyDeg = ei, deg
				}
			}
		}
		for _, ei := range d.InEdges(v) {
			consider(ei, d.Edges[ei].From)
		}
		for _, ei := range d.OutEdges(v) {
			consider(ei, d.Edges[ei].To)
		}
		pick := bestEdge
		if pick < 0 {
			pick = fanEdge
		}
		if pick < 0 {
			pick = anyEdge
		}
		if pick >= 0 {
			chosen[pick] = true
			out = append(out, pick)
		}
	}
	return out
}

// overflowComponent returns the members of a register-carried component that
// cannot fit its PE at this II (more members than modulo slots, or members
// still colliding after repair) — a structural impossibility that no clique
// search can fix. It returns nil when every component fits.
func overflowComponent(d *dfg.DFG, res *sched.Result, ii int) []int {
	parent := make([]int, d.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range d.Edges {
		if e.From == e.To {
			continue
		}
		if span := res.Time[e.To] - res.Time[e.From] + ii*e.Dist; span > 1 {
			parent[find(e.From)] = find(e.To)
		}
	}
	groups := map[int][]int{}
	for v := 0; v < d.N(); v++ {
		groups[find(v)] = append(groups[find(v)], v)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		members := groups[r]
		if len(members) < 2 {
			continue
		}
		if len(members) > ii {
			return members
		}
		slots := map[int]bool{}
		for _, v := range members {
			if slots[res.Time[v]%ii] {
				return members
			}
			slots[res.Time[v]%ii] = true
		}
	}
	return nil
}

// recomputableLoad finds a load with at least two register-carried consumer
// edges incident to the failure and returns it with the longer-span half of
// its outgoing edges (for the clone to take over), or (-1, nil).
func recomputableLoad(d *dfg.DFG, res *sched.Result, ii int, unplaced []int) (int, []int) {
	inUnplaced := map[int]bool{}
	for _, v := range unplaced {
		inUnplaced[v] = true
	}
	bestLoad, bestCarried := -1, 0
	for v := range d.Nodes {
		if d.Nodes[v].Kind != dfg.Load || len(d.OutEdges(v)) < 2 || !inUnplaced[v] {
			continue
		}
		carried := 0
		for _, ei := range d.OutEdges(v) {
			if spanAt(res, ii, d.Edges[ei]) > 1 {
				carried++
			}
		}
		if carried > bestCarried {
			bestLoad, bestCarried = v, carried
		}
	}
	if bestLoad < 0 {
		return -1, nil
	}
	edges := append([]int(nil), d.OutEdges(bestLoad)...)
	sort.Slice(edges, func(i, j int) bool {
		si := spanAt(res, ii, d.Edges[edges[i]])
		sj := spanAt(res, ii, d.Edges[edges[j]])
		if si != sj {
			return si > sj
		}
		return edges[i] < edges[j]
	})
	take := (len(edges) + 1) / 2
	return bestLoad, edges[:take]
}

// meshDegree returns the largest neighbour count in the array — the number
// of PEs a value can be forwarded to in one cycle, beyond which a fan-out
// tree is required.
func meshDegree(c *arch.CGRA) int {
	deg := 0
	for p := 0; p < c.NumPEs(); p++ {
		if d := len(c.Neighbors(p)); d > deg {
			deg = d
		}
	}
	return deg
}

// fanoutProducers returns the distinct producers incident to the unplaced
// operations whose fan-out exceeds the mesh degree, largest first.
func fanoutProducers(d *dfg.DFG, unplaced []int, maxFan int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if !seen[v] && len(d.OutEdges(v)) > maxFan {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range unplaced {
		add(v)
		for _, ei := range d.InEdges(v) {
			add(d.Edges[ei].From)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := len(d.OutEdges(out[i])), len(d.OutEdges(out[j]))
		if di != dj {
			return di > dj
		}
		return out[i] < out[j]
	})
	return out
}

// splitHalfFanout moves the longer-span half of v's consumers behind a new
// Route node.
func splitHalfFanout(d *dfg.DFG, v int, res *sched.Result, ii int) {
	edges := append([]int(nil), d.OutEdges(v)...)
	// Longest spans first: those consumers benefit most from the extra hop.
	sort.Slice(edges, func(i, j int) bool {
		ei, ej := d.Edges[edges[i]], d.Edges[edges[j]]
		si := spanAt(res, ii, ei)
		sj := spanAt(res, ii, ej)
		if si != sj {
			return si > sj
		}
		return edges[i] < edges[j]
	})
	keep := len(edges) / 2
	moved := edges[:len(edges)-keep]
	// Self edges cannot move (the recurrence must stay on the op).
	filtered := moved[:0]
	for _, ei := range moved {
		if d.Edges[ei].To != v {
			filtered = append(filtered, ei)
		}
	}
	if len(filtered) == 0 {
		return
	}
	d.SplitFanout(v, filtered)
}

func spanAt(res *sched.Result, ii int, e dfg.Edge) int {
	return res.Time[e.To] - res.Time[e.From] + ii*e.Dist
}

// unplacedOps returns the operations with no binding in the clique solution.
func unplacedOps(n int, cg *Compat, sol []int) []int {
	placed := make([]bool, n)
	for _, id := range sol {
		placed[cg.Pairs[id].Op] = true
	}
	var out []int
	for v := 0; v < n; v++ {
		if !placed[v] {
			out = append(out, v)
		}
	}
	return out
}
