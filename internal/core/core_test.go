package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"regimap/internal/arch"
	"regimap/internal/dfg"
)

// fig2DFG is the paper's Figure 2 kernel: a->b->c->d plus a->d.
func fig2DFG() *dfg.DFG {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build()
}

func rec3DFG() *dfg.DFG {
	b := dfg.NewBuilder("rec3")
	x := b.Input("x")
	p := b.Op(dfg.Add, "p", x)
	q := b.Op(dfg.Neg, "q", p)
	r := b.Op(dfg.Neg, "r", q)
	b.EdgeDist(r, p, 1, 1)
	return b.Build()
}

// TestFigure2WithRegisters reproduces the paper's headline example: on a 1x2
// CGRA with 2 registers per PE, REGIMap maps the kernel at II=2 (Figure 2d),
// which is only possible because registers carry a's value to d.
func TestFigure2WithRegisters(t *testing.T) {
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	m, stats, err := Map(context.Background(), d, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.II != 2 {
		t.Fatalf("II = %d, want 2 (the paper's Figure 2d)", stats.II)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Perf() != 1.0 {
		t.Errorf("Perf = %v, want 1.0 (MII achieved)", stats.Perf())
	}
}

// TestFigure2WithoutRegisters checks the other half of the paper's argument:
// removing the register files forces a worse II (the value must be routed
// through PEs instead, occupying compute slots).
func TestFigure2WithoutRegisters(t *testing.T) {
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 0)
	m, stats, err := Map(context.Background(), d, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.II <= 2 {
		t.Fatalf("II = %d without registers, want > 2", stats.II)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.RouteInserts == 0 {
		t.Error("register-free mapping should have inserted routing nodes")
	}
}

func TestRecurrenceKernel(t *testing.T) {
	d := rec3DFG()
	c := arch.NewMesh(4, 4, 4)
	m, stats, err := Map(context.Background(), d, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MII != 3 {
		t.Fatalf("MII = %d, want 3", stats.MII)
	}
	if stats.II != 3 {
		t.Errorf("II = %d, want 3 (rec-bounded loops have slack)", stats.II)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCompatFigure5Shape(t *testing.T) {
	// The paper's Figure 5: a scheduled 4-op DFG on a 1x2 CGRA at II=2
	// yields a compatibility graph of 8 nodes (vs 16 in the raw product with
	// II time slots), because scheduling fixed the time dimension.
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	times := []int{0, 1, 2, 3}
	cg, err := BuildCompat(d, c, times, 2, CompatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cg.Nodes() != 8 {
		t.Errorf("compat nodes = %d, want 8 (4 ops x 2 PEs)", cg.Nodes())
	}
	if cg.Edges() == 0 {
		t.Error("compatibility graph has no edges")
	}
	for v := 0; v < d.N(); v++ {
		if len(cg.Candidates(v)) != 2 {
			t.Errorf("op %d has %d candidates, want 2", v, len(cg.Candidates(v)))
		}
	}
}

func TestCompatWeightsMatchFigure2(t *testing.T) {
	// In Figure 2(d): a and d on PE 1 at times 0 and 3, II=2. The value of a
	// lives 3 cycles, so it occupies ceil(3/2)=2 rotating registers of PE 1 —
	// exactly the paper's "two registers are required in PE 2". In our
	// encoding a's own demand is its base weight and every co-resident
	// mapping (here d) is charged the same demand on its arc to a, so each
	// node's weight sum inside a clique equals its PE's total demand.
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 4)
	cg, err := BuildCompat(d, c, []int{0, 1, 2, 3}, 2, CompatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var aOnPE1, dOnPE1 = -1, -1
	for id, p := range cg.Pairs {
		if p.Op == 0 && p.PE == 1 {
			aOnPE1 = id
		}
		if p.Op == 3 && p.PE == 1 {
			dOnPE1 = id
		}
	}
	if aOnPE1 < 0 || dOnPE1 < 0 {
		t.Fatal("expected pairs missing")
	}
	if !cg.G.Adjacent(aOnPE1, dOnPE1) {
		t.Fatal("(PE1,a) and (PE1,d) must be compatible")
	}
	if got := cg.G.Base(aOnPE1); got != 2 {
		t.Errorf("base(a@PE1) = %d, want 2 (the paper's two registers)", got)
	}
	if w := cg.G.Weight(dOnPE1, aOnPE1); w != 2 {
		t.Errorf("weight d->a = %d, want 2 (d pays for a's parked value)", w)
	}
	if sum := cg.G.Base(dOnPE1) + cg.G.Weight(dOnPE1, aOnPE1); sum != 2 {
		t.Errorf("d's in-clique weight sum = %d, want 2 (the PE total)", sum)
	}
	// Cross-PE binding of a register-carried pair must be incompatible.
	var aOnPE0 = -1
	for id, p := range cg.Pairs {
		if p.Op == 0 && p.PE == 0 {
			aOnPE0 = id
		}
	}
	if cg.G.Adjacent(aOnPE0, dOnPE1) {
		t.Error("register-carried dependence across PEs must be incompatible")
	}
}

func TestCompatSelfRecurrenceBase(t *testing.T) {
	b := dfg.NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	c := arch.NewMesh(1, 2, 2)
	cg, err := BuildCompat(d, c, []int{0, 1}, 2, CompatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// acc's self edge spans 2 at II=2: one register wherever acc lands.
	for _, id := range cg.Candidates(acc) {
		if got := cg.G.Base(id); got != 1 {
			t.Errorf("base weight = %d, want 1", got)
		}
	}
	for _, id := range cg.Candidates(x) {
		if got := cg.G.Base(id); got != 0 {
			t.Errorf("input base weight = %d, want 0", got)
		}
	}
}

func TestCompatMemoryBusIncompatibility(t *testing.T) {
	b := dfg.NewBuilder("mem2")
	a1 := b.Input("a1")
	a2 := b.Input("a2")
	b.Op(dfg.Load, "l1", a1)
	b.Op(dfg.Load, "l2", a2)
	d := b.Build()
	c := arch.NewMesh(1, 4, 2) // single row: one shared bus
	// Both loads scheduled in the same modulo slot.
	cg, err := BuildCompat(d, c, []int{0, 0, 1, 1}, 2, CompatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var l1p0, l2p2 = -1, -1
	for id, p := range cg.Pairs {
		if p.Op == 2 && p.PE == 0 {
			l1p0 = id
		}
		if p.Op == 3 && p.PE == 2 {
			l2p2 = id
		}
	}
	if cg.G.Adjacent(l1p0, l2p2) {
		t.Error("two same-slot loads on one row must be incompatible")
	}
}

func TestCompatErrors(t *testing.T) {
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	if _, err := BuildCompat(d, c, []int{0, 1}, 2, CompatOptions{}); err == nil {
		t.Error("accepted wrong times length")
	}
	if _, err := BuildCompat(d, c, []int{0, 1, 2, 3}, 0, CompatOptions{}); err == nil {
		t.Error("accepted II=0")
	}
	if _, err := BuildCompat(d, c, []int{0, -1, 2, 3}, 2, CompatOptions{}); err == nil {
		t.Error("accepted unscheduled op")
	}
	if _, err := BuildCompat(d, c, []int{3, 1, 2, 3}, 2, CompatOptions{}); err == nil {
		t.Error("accepted schedule violating dependences")
	}
	// Heterogeneous array where no PE supports Mul.
	bb := dfg.NewBuilder("mul")
	x := bb.Input("x")
	bb.Op(dfg.Mul, "m", x, x)
	dm := bb.Build()
	cm := arch.NewMesh(1, 2, 2)
	cm.RestrictPE(0, dfg.Add)
	cm.RestrictPE(1, dfg.Add)
	if _, err := BuildCompat(dm, cm, []int{0, 1}, 2, CompatOptions{}); err == nil {
		t.Error("accepted op no PE supports")
	}
}

func TestMapHeterogeneous(t *testing.T) {
	// Only PE 1 multiplies; the mapper must route the multiply there.
	b := dfg.NewBuilder("het")
	x := b.Input("x")
	y := b.Op(dfg.Mul, "y", x, x)
	b.Op(dfg.Add, "z", y, x)
	d := b.Build()
	c := arch.NewMesh(1, 2, 4)
	c.RestrictPE(0, dfg.Add, dfg.Input, dfg.Neg)
	m, _, err := Map(context.Background(), d, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.PE[y] != 1 {
		t.Errorf("mul on PE %d, want 1", m.PE[y])
	}
}

func TestMapImpossibleKernel(t *testing.T) {
	// An op no PE supports at all: Map must fail cleanly.
	b := dfg.NewBuilder("impossible")
	x := b.Input("x")
	b.Op(dfg.Mul, "m", x, x)
	d := b.Build()
	c := arch.NewMesh(1, 2, 2)
	c.RestrictPE(0, dfg.Add)
	c.RestrictPE(1, dfg.Add)
	if _, _, err := Map(context.Background(), d, c, Options{MaxII: 4}); err == nil {
		t.Fatal("mapped an impossible kernel")
	}
}

func TestMapInvalidDFGRejected(t *testing.T) {
	bad := &dfg.DFG{Name: "bad", Nodes: []dfg.Node{{ID: 0, Name: "x", Kind: dfg.Add}}}
	if _, _, err := Map(context.Background(), bad, arch.NewMesh(2, 2, 2), Options{}); err == nil {
		t.Fatal("accepted invalid DFG")
	}
}

func TestStatsPerf(t *testing.T) {
	s := &Stats{MII: 3, II: 4}
	if s.Perf() != 0.75 {
		t.Errorf("Perf = %v, want 0.75", s.Perf())
	}
	if (&Stats{MII: 3}).Perf() != 0 {
		t.Error("failed mapping must report Perf 0")
	}
}

// randomKernel builds a random valid DFG with optional recurrences and
// memory operations.
func randomKernel(rng *rand.Rand) *dfg.DFG {
	b := dfg.NewBuilder("rand")
	n := 4 + rng.Intn(14)
	ids := []int{b.Input("i0")}
	kinds := []dfg.OpKind{dfg.Add, dfg.Sub, dfg.Mul, dfg.Xor, dfg.Min}
	for len(ids) < n {
		switch rng.Intn(6) {
		case 0:
			ids = append(ids, b.Input("i"))
		case 1:
			ids = append(ids, b.Op(dfg.Load, "ld", ids[rng.Intn(len(ids))]))
		default:
			k := kinds[rng.Intn(len(kinds))]
			ids = append(ids, b.Op(k, "op", ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]))
		}
	}
	if rng.Intn(2) == 0 {
		acc := b.Op(dfg.Add, "acc", ids[rng.Intn(len(ids))])
		b.EdgeDist(acc, acc, 1, 1+rng.Intn(2))
	}
	return b.Build()
}

// Property: every mapping REGIMap returns passes the independent validator,
// and II never beats the lower bound.
func TestMapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomKernel(rng)
		arrays := []*arch.CGRA{
			arch.NewMesh(2, 2, 2),
			arch.NewMesh(2, 2, 4),
			arch.NewMesh(4, 4, 4),
		}
		c := arrays[rng.Intn(len(arrays))]
		m, stats, err := Map(context.Background(), d, c, Options{})
		if err != nil {
			return true // failing to map is allowed; returning bad maps is not
		}
		if m.Validate() != nil {
			return false
		}
		return stats.II >= stats.MII
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: REGIMap is deterministic.
func TestMapDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := arch.NewMesh(2, 2, 2)
	for i := 0; i < 10; i++ {
		d := randomKernel(rng)
		_, s1, err1 := Map(context.Background(), d, c, Options{})
		_, s2, err2 := Map(context.Background(), d, c, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("nondeterministic outcome")
		}
		if err1 == nil && s1.II != s2.II {
			t.Fatalf("nondeterministic II: %d vs %d", s1.II, s2.II)
		}
	}
}

// The rescheduling ablation must never *improve* results: disabling learning
// can only keep II equal or make it worse.
func TestDisableRescheduleNeverHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := arch.NewMesh(2, 2, 2)
	for i := 0; i < 15; i++ {
		d := randomKernel(rng)
		_, full, errFull := Map(context.Background(), d, c, Options{})
		_, ablated, errAbl := Map(context.Background(), d, c, Options{DisableReschedule: true})
		if errFull != nil {
			continue
		}
		if errAbl != nil {
			continue // ablated failing entirely is "worse", fine
		}
		if ablated.II < full.II {
			t.Fatalf("kernel %d: ablated II %d beat full II %d", i, ablated.II, full.II)
		}
	}
}

// TestFigure3Example reproduces the paper's Figure 3: a 6-op DFG on a 1x2
// CGRA whose MII is 3 (6 ops / 2 PEs) and which REGIMap maps at that bound.
func TestFigure3Example(t *testing.T) {
	b := dfg.NewBuilder("fig3")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", a)
	d := b.Op(dfg.Add, "d", bb, c)
	e := b.Op(dfg.Neg, "e", c)
	f := b.Op(dfg.Add, "f", d, e)
	_ = f
	kernel := b.Build()
	cgra := arch.NewMesh(1, 2, 2)
	m, stats, err := Map(context.Background(), kernel, cgra, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MII != 3 {
		t.Fatalf("MII = %d, want 3 (6 ops on 2 PEs)", stats.MII)
	}
	if stats.II > 4 {
		t.Errorf("II = %d; the paper maps this example at its MII of 3", stats.II)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
