package core

import (
	"fmt"
	"sort"

	"regimap/internal/dfg"
	"regimap/internal/obs"
	"regimap/internal/sched"
)

// scheduleKey identifies a schedule attempt for the duplicate-detection set.
func scheduleKey(width int, res *sched.Result) string {
	return fmt.Sprintf("%d|%v", width, res.Time)
}

// scheduleNext produces the next schedule attempt, trying variants until one
// has not been seen before: the paper's local repair first (move each failed
// operation one cycle earlier, keeping everything else free), then one cycle
// later (which converts a crowded adjacency into a register-carried hop),
// then a full reschedule with the failed operations prioritized. Every
// produced schedule is post-processed by repairCarried, which separates
// register-carried components whose members collide in a modulo slot — such
// schedules can never be placed, whatever the clique search does.
func scheduleNext(sc *sched.Scheduler, d *dfg.DFG, ii, width int, prefer []int, prev *sched.Result, prevUnplaced []int, keyWidth int, seen map[string]bool, tr *obs.Tracer) *sched.Result {
	base := sched.Options{MaxPEs: width, Trace: tr}
	var fallback *sched.Result
	try := func(opts sched.Options) *sched.Result {
		res, err := sc.Schedule(ii, opts)
		if err != nil {
			return nil
		}
		res = repairCarried(sc, d, ii, opts, res)
		if fallback == nil {
			fallback = res
		}
		if seen[scheduleKey(keyWidth, res)] {
			return nil
		}
		return res
	}
	if prev != nil && len(prevUnplaced) > 0 {
		for _, delta := range []int{-1, +1, -2, +2} {
			pins := make(map[int]int, len(prevUnplaced))
			feasible := true
			for _, v := range prevUnplaced {
				t := prev.Time[v] + delta
				if t < 0 {
					feasible = false
					break
				}
				pins[v] = t
			}
			if !feasible {
				continue
			}
			pinned := base
			pinned.Pin = pins
			if res := try(pinned); res != nil {
				return res
			}
		}
	}
	withPrefer := base
	withPrefer.Prefer = prefer
	if res := try(withPrefer); res != nil {
		return res
	}
	if fallback != nil {
		return fallback // all variants already seen: caller will relax
	}
	return nil
}

// repairCarried constructively fixes a structural placement impossibility the
// plain modulo scheduler cannot see: operations linked by register-carried
// dependences (span > 1) must end up on one PE, so they need pairwise
// distinct modulo slots. When members of such a component collide, the later
// one is pinned one slot onward and the kernel rescheduled, a few rounds.
// The original schedule is returned when repair fails — placement will then
// fail and the outer loop tries its stronger moves.
func repairCarried(sc *sched.Scheduler, d *dfg.DFG, ii int, opts sched.Options, res *sched.Result) *sched.Result {
	for round := 0; round < 4; round++ {
		pins := carriedCollisionPins(d, res, ii)
		if len(pins) == 0 {
			return res
		}
		next := opts
		next.Pin = make(map[int]int, len(opts.Pin)+len(pins))
		for v, t := range opts.Pin {
			next.Pin[v] = t
		}
		for v, t := range pins {
			next.Pin[v] = t
		}
		fixed, err := sc.Schedule(ii, next)
		if err != nil {
			return res
		}
		opts, res = next, fixed
	}
	return res
}

// carriedCollisionPins finds register-carried components (union-find over
// span>1 edges) whose members share a modulo slot and proposes pins that
// move the later colliders to the next free slot of their component.
func carriedCollisionPins(d *dfg.DFG, res *sched.Result, ii int) map[int]int {
	parent := make([]int, d.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	carried := false
	for _, e := range d.Edges {
		if e.From == e.To {
			continue
		}
		if span := res.Time[e.To] - res.Time[e.From] + ii*e.Dist; span > 1 {
			parent[find(e.From)] = find(e.To)
			carried = true
		}
	}
	if !carried {
		return nil
	}
	groups := map[int][]int{}
	for v := 0; v < d.N(); v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	pins := map[int]int{}
	for _, members := range groups {
		if len(members) < 2 || len(members) > ii {
			continue // singleton, or unrepairable at this II
		}
		// Deterministic: earlier-scheduled members keep their slots.
		sort.Slice(members, func(i, j int) bool {
			if res.Time[members[i]] != res.Time[members[j]] {
				return res.Time[members[i]] < res.Time[members[j]]
			}
			return members[i] < members[j]
		})
		used := make([]bool, ii)
		for _, v := range members {
			t := res.Time[v]
			if !used[t%ii] {
				used[t%ii] = true
				continue
			}
			for delta := 1; delta < ii; delta++ {
				if !used[(t+delta)%ii] {
					pins[v] = t + delta
					used[(t+delta)%ii] = true
					break
				}
			}
		}
	}
	return pins
}
