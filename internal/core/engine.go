package core

import (
	"context"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/engine"
)

// engineMapper adapts Map to the unified engine contract under the name
// "regimap". Options.Extra, when set, must be a core.Options.
type engineMapper struct{}

func init() { engine.Register(engineMapper{}) }

func (engineMapper) Name() string { return "regimap" }

func (engineMapper) Describe() string {
	return "REGIMap: modulo scheduling + register-constrained maximal clique, learning from placement failures (the paper's algorithm)"
}

func (engineMapper) Map(ctx context.Context, d *dfg.DFG, c *arch.CGRA, eo engine.Options) (*engine.Result, error) {
	var opts Options
	switch extra := eo.Extra.(type) {
	case nil:
	case Options:
		opts = extra
	default:
		return nil, &engine.BadOptionsError{Engine: "regimap", Want: "core.Options", Got: eo.Extra}
	}
	if eo.MinII > 0 {
		opts.MinII = eo.MinII
	}
	if eo.MaxII > 0 {
		opts.MaxII = eo.MaxII
	}
	m, st, err := Map(ctx, d, c, opts)
	if st == nil {
		return nil, err
	}
	return &engine.Result{
		Mapping: m,
		MII:     st.MII,
		II:      st.II,
		Rounds:  st.Attempts,
		Stats:   st,
		Elapsed: st.Elapsed,
	}, err
}
