package core

import (
	"context"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/dfg"
	"regimap/internal/sched"
)

// scheduleOf wraps times in a sched.Result for the helpers under test.
func scheduleOf(ii int, times ...int) *sched.Result {
	return &sched.Result{II: ii, Time: times}
}

func TestOverflowComponentDetectsSlotCollision(t *testing.T) {
	// p feeds c1 and c2 register-carried; both consumers in the same modulo
	// slot can never share p's PE.
	b := dfg.NewBuilder("col")
	p := b.Input("p")
	c1 := b.Op(dfg.Neg, "c1", p)
	c2 := b.Op(dfg.Neg, "c2", p)
	d := b.Build()
	// II=3: p@0, c1@3, c2@4 -> spans 3 and 4 (carried); c1's slot 0 collides
	// with p's slot 0.
	got := overflowComponent(d, scheduleOf(3, 0, 3, 4), 3)
	if got == nil {
		t.Fatal("missed a same-slot carried collision")
	}
	// Distinct slots (0, 2, 1): fine.
	if got := overflowComponent(d, scheduleOf(3, 0, 2, 4), 3); got != nil {
		t.Fatalf("flagged a feasible component: %v", got)
	}
	_, _ = c1, c2
}

func TestOverflowComponentDetectsOversize(t *testing.T) {
	// A carried chain of 3 ops cannot fit II=2 (3 members, 2 slots).
	b := dfg.NewBuilder("chain")
	p := b.Input("p")
	q := b.Op(dfg.Neg, "q", p)
	r := b.Op(dfg.Neg, "r", q)
	d := b.Build()
	_ = r
	// All spans 2: one big carried component of size 3 at II=2.
	if got := overflowComponent(d, scheduleOf(2, 0, 2, 4), 2); got == nil {
		t.Fatal("missed an oversized carried component")
	}
	// At II=3 the three distinct slots fit.
	if got := overflowComponent(d, scheduleOf(3, 0, 2, 4), 3); got != nil {
		t.Fatalf("flagged a feasible component: %v", got)
	}
}

func TestCarriedCollisionPinsSeparate(t *testing.T) {
	b := dfg.NewBuilder("pins")
	p := b.Input("p")
	c1 := b.Op(dfg.Neg, "c1", p)
	c2 := b.Op(dfg.Neg, "c2", p)
	d := b.Build()
	// II=3: p@0, c1@3, c2@6 -> slots 0, 0, 0 all collide; pins must move the
	// later members to free slots.
	pins := carriedCollisionPins(d, scheduleOf(3, 0, 3, 6), 3)
	if len(pins) != 2 {
		t.Fatalf("pins = %v, want 2 moved ops", pins)
	}
	slots := map[int]bool{0: true}
	for v, tm := range pins {
		if v == int(p) {
			t.Error("the earliest member must keep its slot")
		}
		if slots[tm%3] {
			t.Errorf("pin %v reuses slot %d", pins, tm%3)
		}
		slots[tm%3] = true
	}
	// No carried edges -> no pins.
	if pins := carriedCollisionPins(d, scheduleOf(3, 0, 1, 1), 3); pins != nil {
		t.Errorf("pins on a span-1 schedule: %v", pins)
	}
	_ = c1
	_ = c2
}

func TestRegisterBoundEdgesPicksLongestSpan(t *testing.T) {
	b := dfg.NewBuilder("edges")
	p := b.Input("p")
	c1 := b.Op(dfg.Neg, "c1", p)
	c2 := b.Op(dfg.Neg, "c2", p)
	d := b.Build()
	res := scheduleOf(4, 0, 1, 3) // c1 span 1, c2 span 3
	edges := registerBoundEdges(d, res, 4, []int{c2})
	if len(edges) != 1 {
		t.Fatalf("edges = %v, want one", edges)
	}
	if e := d.Edges[edges[0]]; e.To != c2 {
		t.Errorf("picked edge to %s, want c2", d.Nodes[e.To].Name)
	}
	_ = c1
}

func TestRegisterBoundEdgesFanoutFallback(t *testing.T) {
	// All spans 1 but the producer has fan-out 6 > mesh degree: the fan-out
	// rule must pick one of its edges.
	b := dfg.NewBuilder("fan")
	p := b.Input("p")
	var consumers []int
	for i := 0; i < 6; i++ {
		consumers = append(consumers, b.Op(dfg.Neg, "c", p))
	}
	d := b.Build()
	times := []int{0, 1, 1, 1, 1, 1, 1}
	edges := registerBoundEdges(d, scheduleOf(2, times...), 2, consumers[:1])
	if len(edges) != 1 {
		t.Fatalf("edges = %v, want one", edges)
	}
	if d.Edges[edges[0]].From != p {
		t.Error("fallback must split the fan-out producer's edge")
	}
}

func TestRegisterBoundEdgesSelfLoopExcluded(t *testing.T) {
	b := dfg.NewBuilder("self")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	// Only the self edge is long; it cannot be relaxed by routing. The x->acc
	// edge (span 1, low fan-out endpoints) is the only legal pick.
	edges := registerBoundEdges(d, scheduleOf(2, 0, 1), 2, []int{acc})
	for _, ei := range edges {
		if d.Edges[ei].From == d.Edges[ei].To {
			t.Fatal("picked a self recurrence for routing")
		}
	}
}

func TestFanoutProducers(t *testing.T) {
	b := dfg.NewBuilder("fan")
	p := b.Input("p")
	q := b.Input("q")
	var last int
	for i := 0; i < 6; i++ {
		last = b.Op(dfg.Add, "c", p, q)
	}
	d := b.Build()
	got := fanoutProducers(d, []int{last}, 4)
	if len(got) != 2 {
		t.Fatalf("producers = %v, want both inputs (fan-out 6 > 4)", got)
	}
	if got := fanoutProducers(d, []int{last}, 8); len(got) != 0 {
		t.Fatalf("producers = %v, want none at threshold 8", got)
	}
}

func TestDFSOrderCoversChainsContiguously(t *testing.T) {
	b := dfg.NewBuilder("chain")
	a := b.Input("a")
	x := b.Op(dfg.Neg, "x", a)
	y := b.Op(dfg.Neg, "y", x)
	z := b.Op(dfg.Neg, "z", y)
	other := b.Input("other")
	d := b.Build()
	order := dfsOrder(d)
	if len(order) != d.N() {
		t.Fatalf("order covers %d/%d ops", len(order), d.N())
	}
	pos := make([]int, d.N())
	for i, v := range order {
		pos[v] = i
	}
	// The chain a-x-y-z must appear as one contiguous run.
	lo, hi := pos[a], pos[a]
	for _, v := range []int{x, y, z} {
		if pos[v] < lo {
			lo = pos[v]
		}
		if pos[v] > hi {
			hi = pos[v]
		}
	}
	if hi-lo != 3 {
		t.Errorf("chain scattered across order positions %d..%d", lo, hi)
	}
	_ = other
}

func TestRouteBudgetFor(t *testing.T) {
	cases := map[int]int{4: 8, 11: 22, 12: 12, 20: 20, 24: 24, 40: 24}
	for n, want := range cases {
		if got := routeBudgetFor(n); got != want {
			t.Errorf("routeBudgetFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMeshDegree(t *testing.T) {
	if got := meshDegree(arch.NewMesh(4, 4, 2)); got != 4 {
		t.Errorf("mesh degree = %d, want 4", got)
	}
	if got := meshDegree(arch.NewMesh(1, 2, 2)); got != 1 {
		t.Errorf("1x2 degree = %d, want 1", got)
	}
	if got := meshDegree(arch.New(3, 3, 2, arch.MeshPlus)); got != 8 {
		t.Errorf("mesh+ degree = %d, want 8", got)
	}
}

func TestSplitHalfFanoutMovesLongSpans(t *testing.T) {
	b := dfg.NewBuilder("split")
	p := b.Input("p")
	c1 := b.Op(dfg.Neg, "c1", p)
	c2 := b.Op(dfg.Neg, "c2", p)
	c3 := b.Op(dfg.Neg, "c3", p)
	c4 := b.Op(dfg.Neg, "c4", p)
	d := b.Build().Clone()
	res := scheduleOf(4, 0, 1, 2, 3, 4)
	before := d.N()
	splitHalfFanout(d, p, res, 4)
	if d.N() != before+1 {
		t.Fatal("no route inserted")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The longest-span consumers (c4, c3) must now hang off the route.
	rt := before
	feeds := map[int]bool{}
	for _, ei := range d.OutEdges(rt) {
		feeds[d.Edges[ei].To] = true
	}
	if !feeds[c4] || !feeds[c3] {
		t.Errorf("route feeds %v, want the long-span consumers c3,c4", feeds)
	}
	if feeds[c1] || feeds[c2] {
		t.Errorf("route stole the short-span consumers: %v", feeds)
	}
	if got := len(d.OutEdges(p)); got != 3 {
		t.Errorf("p's fan-out = %d, want 3 (c1, c2, route)", got)
	}
}

// TestDisabledLearningMatchesExploratoryBehaviour pins the §6.3 ablation
// semantics: with everything disabled, a placement failure escalates II with
// exactly one attempt per II.
func TestDisabledLearningMatchesExploratoryBehaviour(t *testing.T) {
	k := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	_, stats, err := Map(context.Background(), k, c, Options{
		DisableReschedule:     true,
		DisableRouteInsertion: true,
		DisableThinning:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts > stats.II-stats.MII+1 {
		t.Errorf("%d attempts for II range %d..%d: ablated mapper must try once per II",
			stats.Attempts, stats.MII, stats.II)
	}
	if stats.Reschedules != 0 || stats.RouteInserts != 0 || stats.Thinnings != 0 {
		t.Error("ablated mapper used a learning move")
	}
}
