package core

import (
	"context"
	"math"
	"sort"
	"sync"

	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/dfg"
	"regimap/internal/mapping"
	"regimap/internal/obs"
	"regimap/internal/sched"
)

// Attempt is the mutable state of one fixed-II mapping attempt — the value
// the pipeline passes communicate through. Each II escalation starts from a
// fresh Attempt; within an II, the learning passes mutate it (preferred
// operations, inserted routing nodes, thinned width) and the schedule pass
// reads those mutations on the next round.
//
// The passes, in driver order (see mapAtII):
//
//	PassSchedule  — produce the next candidate modulo schedule
//	PassPrecheck  — reject doomed schedules before paying for placement
//	PassCompat    — build (incrementally) the compatibility graph
//	PassPlace     — clique search; assemble the mapping on full placement
//	PassLearn     — learn from a partial placement: reschedule, relax, thin
//	PassRelax     — the stronger learning moves, also reachable via precheck
//
// Each is independently testable (see pipeline_test.go); the driver owns the
// round budget and context checks.
type Attempt struct {
	d  *dfg.DFG // original kernel
	ds *dfg.DFG // work DFG (route nodes may be inserted)
	c  *arch.CGRA
	sc *sched.Scheduler
	ii int

	opts  Options
	stats *Stats
	tr    *obs.Tracer

	pes     int // usable PEs (== NumPEs on a healthy array)
	memRows int // usable memory rows (== Rows on a healthy array)

	width        int
	routeBudget  int
	reserve      int // extra insertions granted to nearly-complete placements
	bestUnplaced int // the paper's N: best |V_Ds - V_C| so far
	stall        int // consecutive non-improving placement attempts
	prefer       []int
	prevSchedule *sched.Result
	prevUnplaced []int
	seen         map[string]bool // schedules already placed (and failed)

	cb      *CompatBuilder // incremental compat builder for the current work DFG
	cbFor   *dfg.DFG       // the DFG cb was built for (route insertion replaces it)
	cbNodes int            // node count cb was sized for (in-place growth invalidates)
}

// NewAttempt prepares the pipeline state for one II.
func NewAttempt(d *dfg.DFG, c *arch.CGRA, ii int, opts Options, stats *Stats, tr *obs.Tracer) *Attempt {
	pes, memRows := c.MIIResources()
	return &Attempt{
		d: d, ds: d, c: c,
		sc:           sched.New(d, pes, memRows),
		ii:           ii,
		opts:         opts,
		stats:        stats,
		tr:           tr,
		pes:          pes,
		memRows:      memRows,
		width:        pes,
		routeBudget:  routeBudgetFor(d.N()),
		reserve:      8,
		bestUnplaced: math.MaxInt,
		seen:         map[string]bool{},
	}
}

// II returns the initiation interval this attempt maps at.
func (a *Attempt) II() int { return a.ii }

// WorkDFG returns the (possibly route-extended) DFG the attempt currently
// schedules and places.
func (a *Attempt) WorkDFG() *dfg.DFG { return a.ds }

// Width returns the current schedule width (thinning shrinks it).
func (a *Attempt) Width() int { return a.width }

// PassSchedule produces the next candidate schedule, trying the local-repair
// variants before a full reschedule (see scheduleNext). It returns nil when
// the kernel is unschedulable at the current width — the signal to escalate
// II.
func (a *Attempt) PassSchedule() *sched.Result {
	sp := a.tr.Start("pass.schedule")
	res := scheduleNext(a.sc, a.ds, a.ii, a.width, a.prefer, a.prevSchedule, a.prevUnplaced, a.width, a.seen, a.tr)
	if res != nil {
		sp.Field("length", int64(res.Length))
	}
	sp.Field("width", int64(a.width))
	sp.FieldBool("ok", res != nil)
	sp.End()
	return res
}

// PassPrecheck vets a schedule before the expensive passes. It returns
// proceed=true when the schedule is worth placing; otherwise skip holds the
// operation set the relaxation pass should work on:
//
//   - a schedule already placed (and failed) would fail identically, so the
//     previous round's unplaced set is relaxed instead;
//   - a register-carried component larger than II can never share a PE
//     (whatever the clique search does), so its members are relaxed — unless
//     learning is disabled, in which case the doomed placement is allowed to
//     fail on its own, mirroring the exploratory mappers of the ablation.
func (a *Attempt) PassPrecheck(res *sched.Result) (skip []int, proceed bool) {
	key := scheduleKey(a.width, res)
	if a.seen[key] {
		a.tr.Point1("pass.precheck", "dup", 1)
		return a.prevUnplaced, false
	}
	a.seen[key] = true
	if overflow := overflowComponent(a.ds, res, a.ii); overflow != nil && !a.opts.DisableReschedule {
		a.tr.Point1("pass.precheck", "overflow", int64(len(overflow)))
		return overflow, false
	}
	return nil, true
}

// PassCompat returns the compatibility graph for the schedule, building it
// incrementally: the builder persists across rounds at this II and only
// rebuilds the rows of rescheduled operations. Structural learning moves
// (route insertion, recomputation) grow the work DFG — sometimes by mutating
// the already-cloned DFG in place — so the builder is invalidated both on
// identity change and on node-count change.
func (a *Attempt) PassCompat(res *sched.Result) (*Compat, error) {
	sp := a.tr.Start("pass.compat")
	if a.cb == nil || a.cbFor != a.ds || a.cbNodes != a.ds.N() {
		cb, err := NewCompatBuilder(a.ds, a.c, a.ii, a.opts.Compat)
		if err != nil {
			sp.FieldBool("ok", false)
			sp.End()
			return nil, err
		}
		a.cb, a.cbFor, a.cbNodes = cb, a.ds, a.ds.N()
	}
	cg, err := a.cb.Build(res.Time)
	if err == nil {
		a.stats.CompatNodes = cg.Nodes()
		a.stats.CompatEdges = cg.Edges()
		sp.Field("nodes", int64(cg.Nodes()))
		sp.Field("edges", int64(cg.Edges()))
	}
	sp.End()
	return cg, err
}

// PassPlace runs the clique search over the compatibility graph. On a full
// placement it assembles and returns the mapping; otherwise it returns nil
// and the operations left unplaced (the paper's V_Ds − V_C). ctx reaches the
// parallel clique engine so a cancelled request stops between partitions;
// the Clique options' Workers count selects the engine.
func (a *Attempt) PassPlace(ctx context.Context, cg *Compat, res *sched.Result) (*mapping.Mapping, []int) {
	sp := a.tr.Start("pass.clique")
	opts := a.opts.Clique
	opts.Ctx = ctx
	sol := findPlacement(cg, a.ds.N(), res.Time, opts, a.tr)
	sp.Field("placed", int64(len(sol)))
	sp.Field("target", int64(a.ds.N()))
	sp.End()
	if len(sol) == a.ds.N() {
		m := mapping.New(a.ds, a.c, a.ii)
		copy(m.Time, res.Time)
		for _, id := range sol {
			m.PE[cg.Pairs[id].Op] = cg.Pairs[id].PE
		}
		return m, nil
	}
	return nil, unplacedOps(a.ds.N(), cg, sol)
}

// PassLearn reacts to a partial placement — the paper's learn-from-failure
// loop. While the unplaced set keeps shrinking, the cheap move is taken:
// reschedule with the unplaced operations first (the next PassSchedule reads
// the preference). After a few non-improving rounds it reaches for PassRelax.
// It returns false when learning is exhausted and II must escalate.
func (a *Attempt) PassLearn(res *sched.Result, unplaced []int) bool {
	if len(unplaced) >= a.bestUnplaced {
		// Give the cheap rescheduling moves a little patience before
		// reaching for the structural relaxations.
		a.stall++
		if a.stall >= 3 {
			return a.PassRelax(res, unplaced)
		}
	} else {
		a.bestUnplaced = len(unplaced)
		a.stall = 0
	}
	// Learning move 1: reschedule with the unplaced operations first.
	a.stats.Reschedules++
	a.tr.Point1("pass.learn", "reschedule", 1)
	a.prefer = unplaced
	a.prevSchedule = res
	a.prevUnplaced = unplaced
	return true
}

// PassRelax applies the stronger learning moves when rescheduling stopped
// converging: first relax the routing problem — shrink over-connected
// fan-outs, split a register-bound edge with a Route node (Appendix E), or
// clone a recomputable load — then thin the schedule width. It returns false
// when both are exhausted and II must escalate.
func (a *Attempt) PassRelax(res *sched.Result, unplaced []int) bool {
	sp := a.tr.Start("pass.learn")
	routes := a.stats.RouteInserts + a.stats.Recomputes
	thins := a.stats.Thinnings
	ok := a.relaxOrThin(res, unplaced)
	sp.Field("inserts", int64(a.stats.RouteInserts+a.stats.Recomputes-routes))
	sp.Field("thins", int64(a.stats.Thinnings-thins))
	sp.FieldBool("ok", ok)
	sp.End()
	return ok
}

// reset clears the per-schedule learning state after a structural change
// (route insertion or thinning).
func (a *Attempt) reset() {
	a.prefer, a.prevSchedule, a.prevUnplaced = nil, nil, nil
	a.bestUnplaced = math.MaxInt
}

// relaxOrThin is PassRelax's engine: route-insertion relaxations first, then
// thinning, false when out of moves.
func (a *Attempt) relaxOrThin(res *sched.Result, unplaced []int) bool {
	opts, stats := a.opts, a.stats
	a.stall = 0
	budget := a.routeBudget
	if budget < 0 {
		budget = 0
	}
	if len(unplaced) > 0 && len(unplaced) <= 2 && a.reserve > 0 {
		budget++ // endgame reserve: a nearly-complete placement earns extra relaxation
		a.reserve--
	}
	if !opts.DisableRouteInsertion && budget > 0 {
		changed := false
		// First shrink over-connected values: a producer whose fan-out
		// exceeds the mesh degree can never deliver all copies directly, so
		// half of its consumers are moved behind a Route node (a fan-out
		// tree, the transformation behind the paper's path sharing).
		if fanouts := fanoutProducers(a.ds, unplaced, meshDegree(a.c)); len(fanouts) > 0 {
			if a.ds == a.d {
				a.ds = a.d.Clone()
			}
			for _, v := range fanouts {
				if budget == 0 {
					break
				}
				splitHalfFanout(a.ds, v, res, a.ii)
				budget--
				a.routeBudget--
				stats.RouteInserts++
				changed = true
			}
		}
		if !changed {
			edges := registerBoundEdges(a.ds, res, a.ii, unplaced)
			if len(edges) > 3 {
				edges = edges[:3] // relax gently; each node enlarges the search
			}
			if len(edges) > 0 {
				if a.ds == a.d {
					a.ds = a.d.Clone()
				}
				for _, ei := range edges {
					if budget == 0 {
						break
					}
					a.ds.InsertRoute(ei)
					budget--
					a.routeBudget--
					stats.RouteInserts++
					changed = true
				}
			}
		}
		if !changed {
			// Recomputation (paper Section 3, Figure 4a): when no edge can
			// be routed around, clone an unplaced multi-consumer load so
			// each copy serves part of the fan-out — re-reading memory is
			// cheaper than carrying the value.
			if v, edges := recomputableLoad(a.ds, res, a.ii, unplaced); v >= 0 && budget > 0 {
				if a.ds == a.d {
					a.ds = a.d.Clone()
				}
				a.ds.Duplicate(v, edges)
				budget--
				a.routeBudget--
				stats.Recomputes++
				changed = true
			}
		}
		if changed {
			a.sc = sched.New(a.ds, a.pes, a.memRows)
			a.reset()
			return true
		}
	}
	if !opts.DisableThinning {
		a.width--
		stats.Thinnings++
		if a.width < ceilDiv(a.ds.N(), a.ii) {
			return false // thinning would force a larger II: escalate
		}
		a.reset()
		return true
	}
	return false
}

// routeBudgetFor caps routing-node insertions per II attempt: generous for
// small kernels, bounded for large ones so the work DFG cannot snowball
// (every insertion enlarges the compatibility graph the clique search pays
// for).
func routeBudgetFor(n int) int {
	if n < 12 {
		return 2 * n
	}
	if n > 24 {
		return 24
	}
	return n
}

// findPlacement runs the clique search: the group-aware constructive pass
// first (one candidate per operation, most-constrained first), falling back
// to the paper's generic greedy/swap/intersection heuristic when it comes up
// short. Both return feasible cliques; the larger wins.
func findPlacement(cg *Compat, target int, times []int, opts clique.Options, tr *obs.Tracer) []int {
	opts.Trace = tr
	if opts.Workers > 1 {
		return findPlacementParallel(cg, target, times, opts)
	}
	// First pass: place operations in schedule order so each lands next to
	// its already-placed producers (cluster growth); the promote-on-failure
	// rounds still reorder the stragglers.
	var sol []int
	if opts.GroupOrder == nil && len(times) == target {
		order := make([]int, target)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			if times[order[i]] != times[order[j]] {
				return times[order[i]] < times[order[j]]
			}
			return order[i] < order[j]
		})
		scheduled := opts
		scheduled.GroupOrder = order
		sol = clique.FindGrouped(cg.G, cg.byOp, scheduled)
		if len(sol) >= target {
			return sol
		}
	}
	// Second pass: depth-first dataflow order, so chains (address streams,
	// reduction spines) are placed contiguously and can fold onto one PE
	// across consecutive slots.
	if len(times) == target {
		dfs := opts
		dfs.GroupOrder = dfsOrder(cg.d)
		if alt := clique.FindGrouped(cg.G, cg.byOp, dfs); len(alt) > len(sol) {
			sol = alt
			if len(sol) >= target {
				return sol
			}
		}
	}
	// Third pass: most-constrained-first order (FindGrouped's default).
	if alt := clique.FindGrouped(cg.G, cg.byOp, opts); len(alt) > len(sol) {
		sol = alt
		if len(sol) >= target {
			return sol
		}
	}
	// The generic greedy/swap/intersection heuristic explores more of the
	// graph but scales with its square; beyond a few hundred nodes the
	// grouped passes plus the outer learning loop are the better use of time.
	if cg.Nodes() <= 384 {
		if opts.SeedOrder == nil {
			// The graph caches the degree sort, so repeated placements of an
			// unchanged (or partially-rebuilt) graph sort at most once.
			opts.SeedOrder = cg.G.DegreeOrder()
		}
		if alt := clique.Find(cg.G, target, opts); len(alt) > len(sol) {
			return alt
		}
	}
	return sol
}

// findPlacementParallel is findPlacement with the four placement passes run
// speculatively on their own goroutines — the ROADMAP's "parallel clique
// search inside one attempt". Each pass is a pure function of the (frozen)
// compatibility graph, so the sequential early-exit cascade is simply
// replayed over the completed results, returning exactly what the sequential
// code returns; the only cost is wasted work on passes the sequential path
// would have skipped. The generic heuristic pass additionally splits its own
// seed partitions across opts.Workers (see clique.Find).
func findPlacementParallel(cg *Compat, target int, times []int, opts clique.Options) []int {
	type slot struct {
		run bool
		sol []int
	}
	var res [4]slot
	var wg sync.WaitGroup
	launch := func(i int, fn func() []int) {
		res[i].run = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[i].sol = fn()
		}()
	}
	runFind := cg.Nodes() <= 384
	if runFind && opts.SeedOrder == nil {
		// Sort (and cache) the degree order before any goroutine launches:
		// the cache write must not race the concurrent searches, and the
		// closures capture opts itself.
		opts.SeedOrder = cg.G.DegreeOrder()
	}
	if opts.GroupOrder == nil && len(times) == target {
		order := make([]int, target)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			if times[order[i]] != times[order[j]] {
				return times[order[i]] < times[order[j]]
			}
			return order[i] < order[j]
		})
		scheduled := opts
		scheduled.GroupOrder = order
		launch(0, func() []int { return clique.FindGrouped(cg.G, cg.byOp, scheduled) })
	}
	if len(times) == target {
		dfs := opts
		dfs.GroupOrder = dfsOrder(cg.d)
		launch(1, func() []int { return clique.FindGrouped(cg.G, cg.byOp, dfs) })
	}
	launch(2, func() []int { return clique.FindGrouped(cg.G, cg.byOp, opts) })
	if runFind {
		launch(3, func() []int { return clique.Find(cg.G, target, opts) })
	}
	wg.Wait()

	var sol []int
	if res[0].run {
		sol = res[0].sol
		if len(sol) >= target {
			return sol
		}
	}
	for _, s := range res[1:3] {
		if s.run && len(s.sol) > len(sol) {
			sol = s.sol
			if len(sol) >= target {
				return sol
			}
		}
	}
	if res[3].run && len(res[3].sol) > len(sol) {
		return res[3].sol
	}
	return sol
}

// dfsOrder returns the operations in depth-first dataflow order, starting
// from the highest-degree roots, so connected chains appear consecutively.
func dfsOrder(d *dfg.DFG) []int {
	roots := make([]int, d.N())
	for i := range roots {
		roots[i] = i
	}
	deg := func(v int) int { return len(d.InEdges(v)) + len(d.OutEdges(v)) }
	sort.SliceStable(roots, func(i, j int) bool {
		if deg(roots[i]) != deg(roots[j]) {
			return deg(roots[i]) > deg(roots[j])
		}
		return roots[i] < roots[j]
	})
	seen := make([]bool, d.N())
	order := make([]int, 0, d.N())
	var visit func(v int)
	visit = func(v int) {
		if seen[v] {
			return
		}
		seen[v] = true
		order = append(order, v)
		for _, ei := range d.OutEdges(v) {
			visit(d.Edges[ei].To)
		}
		for _, ei := range d.InEdges(v) {
			visit(d.Edges[ei].From)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return order
}

// unplacedOps returns the operations with no binding in the clique solution.
func unplacedOps(n int, cg *Compat, sol []int) []int {
	placed := make([]bool, n)
	for _, id := range sol {
		placed[cg.Pairs[id].Op] = true
	}
	var out []int
	for v := 0; v < n; v++ {
		if !placed[v] {
			out = append(out, v)
		}
	}
	return out
}
