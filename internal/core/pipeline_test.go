package core

import (
	"context"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/obs"
	"regimap/internal/sched"
)

// newTestAttempt builds an Attempt the way mapAtII does, at the kernel's MII.
func newTestAttempt(t *testing.T, opts Options) (*Attempt, int) {
	t.Helper()
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	pes, memRows := c.MIIResources()
	ii := d.MII(pes, memRows)
	return NewAttempt(d, c, ii, opts, &Stats{MII: ii}, nil), ii
}

func TestPassScheduleAvoidsSeenSchedules(t *testing.T) {
	a, _ := newTestAttempt(t, Options{})
	res := a.PassSchedule()
	if res == nil {
		t.Fatal("fig2 should schedule at MII")
	}
	if _, proceed := a.PassPrecheck(res); !proceed {
		t.Fatal("first schedule should proceed to placement")
	}
	// The same schedule is now in the seen set: a second round must either
	// produce a different schedule or fall back (and then fail precheck).
	a.prevSchedule, a.prevUnplaced = res, []int{0}
	res2 := a.PassSchedule()
	if res2 == nil {
		t.Fatal("rescheduling should still succeed")
	}
	if scheduleKey(a.Width(), res2) == scheduleKey(a.Width(), res) {
		if _, proceed := a.PassPrecheck(res2); proceed {
			t.Fatal("duplicate schedule must not proceed to placement twice")
		}
	}
}

func TestPassPrecheckDuplicate(t *testing.T) {
	a, _ := newTestAttempt(t, Options{})
	res := a.PassSchedule()
	a.prevUnplaced = []int{3}
	if _, proceed := a.PassPrecheck(res); !proceed {
		t.Fatal("fresh schedule rejected")
	}
	skip, proceed := a.PassPrecheck(res)
	if proceed {
		t.Fatal("duplicate schedule accepted")
	}
	if len(skip) != 1 || skip[0] != 3 {
		t.Fatalf("duplicate should hand back the previous unplaced set, got %v", skip)
	}
}

func TestPassPrecheckOverflowComponent(t *testing.T) {
	// rec3 has a carried cycle p->q->r->p. At II=2 a hand-made schedule that
	// parks two component members in one modulo slot is structurally
	// unplaceable; precheck must catch it before the clique search pays.
	d := rec3DFG()
	c := arch.NewMesh(2, 2, 4)
	a := NewAttempt(d, c, 2, Options{}, &Stats{}, nil)
	res := &sched.Result{II: 2, Time: []int{0, 1, 2, 3}, Length: 4}
	// Times: p=1, q=2, r=3 → spans q<-p 1, r<-q 1, p<-r (dist 1) 2*1+1-3=0?
	// Build explicitly instead: force p and r into the same slot.
	res.Time = []int{0, 0, 1, 2} // x, p, q, r: carried edges make {p,q,r} one component
	skip, proceed := a.PassPrecheck(res)
	if overflowComponent(d, res, 2) == nil {
		t.Skip("schedule not overflowing under this DFG shape")
	}
	if proceed {
		t.Fatal("overflowing component passed precheck")
	}
	if len(skip) < 2 {
		t.Fatalf("precheck should hand the component to relaxation, got %v", skip)
	}
}

func TestPassCompatReusesBuilderAcrossRounds(t *testing.T) {
	a, _ := newTestAttempt(t, Options{})
	res := a.PassSchedule()
	if _, err := a.PassCompat(res); err != nil {
		t.Fatal(err)
	}
	cb := a.cb
	if cb == nil {
		t.Fatal("builder not retained")
	}
	if _, err := a.PassCompat(res); err != nil {
		t.Fatal(err)
	}
	if a.cb != cb {
		t.Fatal("unchanged work DFG should reuse the incremental builder")
	}
	if a.stats.CompatNodes == 0 || a.stats.CompatEdges == 0 {
		t.Fatalf("compat stats not recorded: %+v", a.stats)
	}
}

func TestPassPlaceAssemblesValidMapping(t *testing.T) {
	a, ii := newTestAttempt(t, Options{})
	res := a.PassSchedule()
	if _, proceed := a.PassPrecheck(res); !proceed {
		t.Fatal("precheck rejected the MII schedule")
	}
	cg, err := a.PassCompat(res)
	if err != nil {
		t.Fatal(err)
	}
	m, unplaced := a.PassPlace(context.Background(), cg, res)
	if m == nil {
		t.Fatalf("fig2 places fully at MII on 1x2x2 (paper Figure 2d); unplaced=%v", unplaced)
	}
	if m.II != ii {
		t.Fatalf("mapping II = %d, want %d", m.II, ii)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPassLearnStallTriggersRelax(t *testing.T) {
	a, _ := newTestAttempt(t, Options{})
	res := a.PassSchedule()
	before := a.stats.Reschedules
	// Non-improving rounds: same unplaced size each time. The first sets the
	// bar, later rounds stall; the third stall reaches for PassRelax, which
	// on this placeable kernel inserts routes or thins rather than giving up.
	for i := 0; i < 5; i++ {
		if !a.PassLearn(res, []int{3}) {
			t.Fatalf("learning gave up on round %d", i)
		}
	}
	if a.stats.Reschedules <= before {
		t.Fatal("stalled learning never rescheduled")
	}
	if a.stats.RouteInserts+a.stats.Recomputes+a.stats.Thinnings == 0 {
		t.Fatal("three stalls should have triggered a structural relaxation")
	}
}

func TestPassRelaxThinsWhenRoutingDisabled(t *testing.T) {
	// A 2x2 array leaves thinning room: width starts at 4 and the floor is
	// ceil(4 ops / II=2) = 2.
	d := fig2DFG()
	a := NewAttempt(d, arch.NewMesh(2, 2, 4), 2, Options{DisableRouteInsertion: true}, &Stats{}, nil)
	res := a.PassSchedule()
	w := a.Width()
	if !a.PassRelax(res, []int{3}) {
		t.Fatal("thinning should still be available")
	}
	if a.Width() != w-1 || a.stats.Thinnings != 1 {
		t.Fatalf("width %d→%d, thinnings %d: want one thinning", w, a.Width(), a.stats.Thinnings)
	}
	// Thinning below ceil(N/II) must refuse and signal II escalation.
	for a.Width() >= ceilDiv(a.WorkDFG().N(), a.II()) {
		if !a.PassRelax(res, []int{3}) {
			break
		}
	}
	if a.PassRelax(res, []int{3}) {
		t.Fatal("relaxation should be exhausted below the width floor")
	}
}

func TestPipelinePassesEmitTraceEvents(t *testing.T) {
	sink := &obs.MemSink{}
	ctx := obs.With(context.Background(), obs.New(sink))
	d := fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	if _, _, err := Map(ctx, d, c, Options{}); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, name := range sink.Names() {
		got[name] = true
	}
	for _, want := range []string{
		"mii", "ii.attempt", "pass.schedule", "pass.compat", "pass.clique",
		"sched.schedule", "clique.grouped", "map.done",
	} {
		if !got[want] {
			t.Errorf("no %q event emitted; saw %v", want, sink.Names())
		}
	}
	for _, e := range sink.Events() {
		if e.Engine != "regimap" || e.Kernel != d.Name {
			t.Fatalf("event %q mislabelled: engine=%q kernel=%q", e.Name, e.Engine, e.Kernel)
		}
	}
}

// TestPipelineUntracedMatchesTraced guards the zero-cost claim's other half:
// tracing must be purely observational — identical mappings with and without
// a tracer in ctx.
func TestPipelineUntracedMatchesTraced(t *testing.T) {
	d1, d2 := fig2DFG(), fig2DFG()
	c := arch.NewMesh(1, 2, 2)
	m1, s1, err1 := Map(context.Background(), d1, c, Options{})
	ctx := obs.With(context.Background(), obs.New(&obs.MemSink{}))
	m2, s2, err2 := Map(ctx, d2, c, Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1.II != s2.II || s1.Attempts != s2.Attempts {
		t.Fatalf("tracing changed the search: %+v vs %+v", s1, s2)
	}
	for v := range m1.PE {
		if m1.PE[v] != m2.PE[v] || m1.Time[v] != m2.Time[v] {
			t.Fatalf("tracing changed op %d: PE %d/%d T %d/%d", v, m1.PE[v], m2.PE[v], m1.Time[v], m2.Time[v])
		}
	}
}
