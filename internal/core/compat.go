// Package core implements REGIMap itself: the compatibility-graph
// formulation of integrated placement and register allocation (paper
// Appendices A-C), the weight-constrained clique placement (Appendix D), and
// the full learn-from-failure mapping loop (Algorithm 1, Appendix E).
package core

import (
	"fmt"

	"regimap/internal/graph"

	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/dfg"
)

// Pair is one compatibility-graph node: a candidate binding of an operation
// to a PE (the time slot is fixed by the schedule, so the pair fully
// determines a resource of R_II).
type Pair struct {
	Op int // DFG node
	PE int // CGRA PE
}

// Compat is the compatibility graph P between a scheduled DFG and the
// time-extended CGRA R_II (paper Step 1-2, Appendix A-B). Nodes are feasible
// (operation, PE) pairs; an undirected edge means both bindings can coexist;
// directed arc weights carry the register demand of dependences that must be
// register-carried (producer and consumer sharing a PE more than one cycle
// apart).
type Compat struct {
	G     *clique.Graph
	Pairs []Pair
	II    int

	d    *dfg.DFG
	byOp [][]int // candidate node indices per operation
}

// CompatOptions tunes construction; the zero value is this reproduction's
// default model.
type CompatOptions struct {
	// StrictInterIteration applies the paper's conservative Appendix A.2
	// rule: every inter-iteration dependence keeps producer and consumer on
	// one PE, even a one-cycle dependence the output register could forward
	// to a neighbour. The default (false) permits that forwarding — it is
	// safe under the out-register timing model, every mapping is still
	// audited by mapping.Validate and the cycle-accurate simulator, and it
	// avoids inflating II on tight recurrences; the difference is measured
	// by an ablation bench.
	StrictInterIteration bool
}

// CompatBuilder constructs compatibility graphs for one (kernel, array, II)
// repeatedly across the mapping loop's schedule attempts. The schedule-
// independent work — candidate pair enumeration, per-operation candidate
// masks, the clique graph's storage — is done once; each Build then reuses
// it, and when only a few operations moved slots since the previous Build,
// only the adjacency rows of those operations' candidates are rebuilt
// (unchanged-pair constraints depend solely on the two operations' own
// slots, so their edges are provably identical). Register weights are
// re-derived wholesale every Build: they are O(V+E) to compute and follow
// the schedule's spans.
//
// The produced *Compat aliases the builder's storage: it is valid until the
// next Build call, which matches the mapping loop's schedule/place/learn
// cadence. A builder is single-goroutine; portfolio racers each own one.
type CompatBuilder struct {
	d    *dfg.DFG
	c    *arch.CGRA
	ii   int
	opts CompatOptions

	pairs []Pair
	byOp  [][]int
	masks []*graph.Bitset // candidate mask per operation
	memOp []bool          // operation touches a shared memory bus
	g     *clique.Graph
	cg    Compat

	// memPairwise is false only for a single global bus group of capacity
	// >= 2, where memory contention is enforced wholesale by the scheduler
	// and no pairwise conflict exists.
	memPairwise bool

	// Fanout scratch (allocated only on fanout-bounded fabrics): per-pair
	// dedup and per-producer forwardable-consumer counts.
	fanCnt   []int
	fanSeen  []bool
	fanPairs []int

	// Dependence summaries per ordered operation pair, flat at from*N+to
	// (Appendix A.2). Rebuilt each Build by one pass over the edges; the
	// arrays themselves — the allocation — persist across attempts.
	depHas     []bool
	depNeedAdj []bool
	depCarried []bool

	regDemand  []int
	maxCarried []int
	anyDemand  bool

	// handicap pre-charges candidates on PEs whose usable register file is
	// smaller than the nominal NumRegs (a register-file fault): the clique
	// budget is global, so charging the deficit as an unconditional base
	// weight makes the per-node budget check exactly the *usable* per-PE
	// capacity. nil on healthy arrays — the fault-free path is unchanged.
	handicap []int

	prevTimes []int // schedule of the previous successful Build (nil: none)

	// Per-build scratch, allocated once.
	changed      []bool
	changedList  []int
	changedMask  *graph.Bitset
	union        *graph.Bitset
	depFree      [][]int // dep-free partners per op (this build's touched pairs)
	sameSlotFree [][2]int
}

// NewCompatBuilder enumerates candidate pairs for the kernel on the array
// and prepares reusable storage. It fails when the II is non-positive or an
// operation has no supporting PE — the same early outs as a from-scratch
// BuildCompat.
func NewCompatBuilder(d *dfg.DFG, c *arch.CGRA, ii int, opts CompatOptions) (*CompatBuilder, error) {
	if ii <= 0 {
		return nil, fmt.Errorf("core: non-positive II %d", ii)
	}
	b := &CompatBuilder{d: d, c: c, ii: ii, opts: opts}

	// Enumerate candidate pairs: operation x supporting PE. The schedule has
	// already pruned the time dimension — this is the paper's point that
	// scheduling shrinks the product graph (only |V| x |PEs| pairs remain
	// instead of |V| x |PEs| x II).
	b.byOp = make([][]int, d.N())
	for v := range d.Nodes {
		for p := 0; p < c.NumPEs(); p++ {
			if !c.Supports(p, d.Nodes[v].Kind) {
				continue // heterogeneous restriction or a broken PE
			}
			if d.Nodes[v].Kind.IsMem() && !c.MemPEOk(p) {
				continue // memory op where no bus serves: dead row or zero-cap group
			}
			b.byOp[v] = append(b.byOp[v], len(b.pairs))
			b.pairs = append(b.pairs, Pair{Op: v, PE: p})
		}
		if len(b.byOp[v]) == 0 {
			return nil, fmt.Errorf("core: no PE supports op %s (%s)", d.Nodes[v].Name, d.Nodes[v].Kind)
		}
	}

	n := len(b.pairs)
	b.g = clique.NewGraph(n, c.NumRegs)
	b.cg = Compat{G: b.g, Pairs: b.pairs, II: ii, d: d, byOp: b.byOp}
	if !c.Healthy() || !c.UniformRegs() {
		for id, pr := range b.pairs {
			if h := c.NumRegs - c.RegsAt(pr.PE); h > 0 {
				if b.handicap == nil {
					b.handicap = make([]int, n)
				}
				b.handicap[id] = h
			}
		}
	}
	// With one array-wide bus group of capacity >= 2, memory ops impose no
	// pairwise constraint at all: the scheduler's per-slot memory cap equals
	// the group capacity and is exact on its own. Every other scheme (the
	// default row buses included) has per-group capacity <= 1, where sharing
	// a group is exactly a pairwise conflict.
	b.memPairwise = !(c.NumBusGroups() == 1 && c.BusGroupCap(0) > 1)
	if c.Fanout() > 0 {
		b.fanCnt = make([]int, d.N())
		b.fanSeen = make([]bool, d.N()*d.N())
	}

	b.masks = graph.NewBitsetSlab(n, d.N())
	b.memOp = make([]bool, d.N())
	for v := range b.byOp {
		for _, id := range b.byOp[v] {
			b.masks[v].Set(id)
		}
		b.memOp[v] = d.Nodes[v].Kind.IsMem()
	}

	nn := d.N() * d.N()
	b.depHas = make([]bool, nn)
	b.depNeedAdj = make([]bool, nn)
	b.depCarried = make([]bool, nn)
	b.regDemand = make([]int, d.N())
	b.maxCarried = make([]int, d.N())

	b.changed = make([]bool, d.N())
	b.changedMask = graph.NewBitset(n)
	b.union = graph.NewBitset(n)
	b.depFree = make([][]int, d.N())

	// Register weights as a computed function (Appendix B, Theorem C.1):
	// w(u -> v) is v's demand when the two bindings share a PE. The closure
	// reads the builder's regDemand, which every Build refreshes in place.
	b.g.SetWeightFunc(
		func(u, v int) int {
			if b.pairs[u].PE != b.pairs[v].PE {
				return 0
			}
			return b.regDemand[b.pairs[v].Op]
		},
		func(u int) bool { return b.anyDemand },
		func(u int) int { return b.pairs[u].PE })
	return b, nil
}

// Build constructs (or incrementally rebuilds) the compatibility graph for
// the given schedule. times holds the absolute slot of each operation. The
// returned Compat aliases builder storage and is valid until the next Build.
func (b *CompatBuilder) Build(times []int) (*Compat, error) {
	d, ii := b.d, b.ii
	if len(times) != d.N() {
		return nil, fmt.Errorf("core: %d schedule slots for %d ops", len(times), d.N())
	}
	for v := range d.Nodes {
		if times[v] < 0 {
			return nil, fmt.Errorf("core: op %s unscheduled", d.Nodes[v].Name)
		}
	}

	// Summarize dependences once per ordered operation pair (Appendix A.2),
	// and compute each operation's register demand R[i] from the schedule:
	// parallel arcs and multiple consumers of one value share live copies, so
	// the *longest* register-carried span determines the demand —
	// ceil(maxSpan/II) rotating registers, exactly the accounting of
	// mapping.RegisterPressure. The demand is placement-independent because
	// every register-carried consumer is forced onto the producer's PE.
	// Validation comes first so errors leave the builder untouched.
	for _, e := range d.Edges {
		span := times[e.To] - times[e.From] + ii*e.Dist
		if span < d.Nodes[e.From].Kind.Latency() {
			return nil, fmt.Errorf("core: schedule violates edge %s->%s (span %d)",
				d.Nodes[e.From].Name, d.Nodes[e.To].Name, span)
		}
	}
	for v := range b.maxCarried {
		b.maxCarried[v] = 0
	}
	for _, e := range d.Edges {
		if e.From != e.To {
			k := e.From*d.N() + e.To
			b.depHas[k], b.depNeedAdj[k], b.depCarried[k] = false, false, false
		}
	}
	for _, e := range d.Edges {
		span := times[e.To] - times[e.From] + ii*e.Dist
		forwardable := span == 1 && (e.Dist == 0 || !b.opts.StrictInterIteration)
		if span > 1 && span > b.maxCarried[e.From] {
			b.maxCarried[e.From] = span
		}
		if e.From == e.To {
			continue // self recurrence: no pairwise constraint, demand only
		}
		k := e.From*d.N() + e.To
		b.depHas[k] = true
		if forwardable {
			b.depNeedAdj[k] = true
		} else {
			b.depCarried[k] = true
		}
	}
	if fo := b.c.Fanout(); fo > 0 {
		// Link bandwidth: a producer with more forwardable (span-1, distinct
		// consumer) dependences than the fabric's fanout bound cannot serve
		// them all through its output register, since each remote consumer is
		// one same-cycle read. Forcing every such dependence onto the
		// producer's PE is always legal at span 1 and costs no registers, so
		// the clique engine never emits a mapping the link-bandwidth audit
		// rejects. (Conservative: mixed forward/carry splits that would also
		// satisfy the bound are not explored.)
		b.fanPairs = b.fanPairs[:0]
		for v := range b.fanCnt {
			b.fanCnt[v] = 0
		}
		for _, e := range d.Edges {
			if e.From == e.To {
				continue
			}
			k := e.From*d.N() + e.To
			if b.depNeedAdj[k] && !b.depCarried[k] && !b.fanSeen[k] {
				b.fanSeen[k] = true
				b.fanPairs = append(b.fanPairs, k)
				b.fanCnt[e.From]++
			}
		}
		for _, k := range b.fanPairs {
			b.fanSeen[k] = false
			if b.fanCnt[k/d.N()] > fo {
				b.depCarried[k] = true
			}
		}
	}
	b.anyDemand = false
	for v, span := range b.maxCarried {
		if span > 1 {
			b.regDemand[v] = ceilDiv(span, ii)
			b.anyDemand = true
		} else {
			b.regDemand[v] = 0
		}
	}

	// Weights: a value parked in a PE's file is paid for by *every* mapping
	// resident on that PE (the per-node budget check is then exactly the
	// per-PE capacity constraint). Bases carry each node's own demand;
	// re-installing the weight function refreshes the graph's outgoing-weight
	// summaries for this schedule's demands.
	for v, demand := range b.regDemand {
		for _, id := range b.byOp[v] {
			if b.handicap != nil {
				b.g.SetBase(id, demand+b.handicap[id])
			} else {
				b.g.SetBase(id, demand)
			}
		}
	}
	b.g.SetWeightFunc(
		func(u, v int) int {
			if b.pairs[u].PE != b.pairs[v].PE {
				return 0
			}
			return b.regDemand[b.pairs[v].Op]
		},
		func(u int) bool { return b.anyDemand },
		func(u int) int { return b.pairs[u].PE })

	// Decide how much adjacency to rebuild: everything on the first Build
	// (or when most slots moved), otherwise only the rows of operations
	// whose slot changed. Constraints between two unchanged operations
	// depend only on their own slots and the static dependence structure, so
	// those edges are identical and stay.
	// Fanout coupling breaks the incremental invariant: forcing a producer's
	// dependences carried depends on the spans of its *other* consumers, so
	// a pair between two unchanged operations can still flip. Rebuild fully
	// on fanout-bounded fabrics.
	b.changedList = b.changedList[:0]
	full := b.prevTimes == nil || b.c.Fanout() > 0
	if !full {
		for v := range times {
			if times[v] != b.prevTimes[v] {
				b.changed[v] = true
				b.changedList = append(b.changedList, v)
			}
		}
		if 2*len(b.changedList) > d.N() {
			full = true
		}
	}

	if full {
		b.rebuildAdjacencyFull(times)
	} else {
		b.rebuildAdjacencyRows(times)
	}
	for _, v := range b.changedList {
		b.changed[v] = false
	}
	b.prevTimes = append(b.prevTimes[:0], times...)
	return &b.cg, nil
}

// classifyPair applies the Appendix A.2 rules to the ordered pair vi < vj:
// dependence-free pairs are recorded for the bulk mask fast path (the
// overwhelming majority on large arrays), everything else walks the two
// candidate lists and adds the individually-legal edges.
func (b *CompatBuilder) classifyPair(times []int, vi, vj int) {
	d, c, ii := b.d, b.c, b.ii
	si, sj := times[vi]%ii, times[vj]%ii
	sameSlot := si == sj
	memClash := sameSlot && b.memOp[vi] && b.memOp[vj] && b.memPairwise
	kf, kr := vi*d.N()+vj, vj*d.N()+vi
	fwd, rev := b.depHas[kf], b.depHas[kr]

	if !fwd && !rev && !memClash {
		b.depFree[vi] = append(b.depFree[vi], vj)
		b.depFree[vj] = append(b.depFree[vj], vi)
		if sameSlot {
			b.sameSlotFree = append(b.sameSlotFree, [2]int{vi, vj})
		}
		return
	}

	for _, i := range b.byOp[vi] {
		pi := b.pairs[i].PE
		for _, j := range b.byOp[vj] {
			pj := b.pairs[j].PE
			if sameSlot && pi == pj {
				continue // same resource of R_II
			}
			if memClash && c.BusGroupOf(pi) == c.BusGroupOf(pj) {
				// Shared bus group of capacity <= 1 (the default: the row
				// bus). Zero-cap groups never reach here — their PEs were
				// excluded from memory-op candidates at enumeration.
				continue
			}
			samePE := pi == pj
			if fwd {
				if b.depCarried[kf] && !samePE {
					continue
				}
				if b.depNeedAdj[kf] && !c.Connected(pi, pj) {
					continue
				}
			}
			if rev {
				if b.depCarried[kr] && !samePE {
					continue
				}
				if b.depNeedAdj[kr] && !c.Connected(pj, pi) {
					continue
				}
			}
			b.g.AddEdge(i, j)
		}
	}
}

// applyDepFree ORs the accumulated dependence-free partner masks into each
// touched operation's candidate rows, then clears the same-slot same-PE
// collisions (the one resource conflict the bulk OR cannot express).
func (b *CompatBuilder) applyDepFree() {
	for vi, partners := range b.depFree {
		if len(partners) == 0 {
			continue
		}
		b.union.Reset()
		for _, vj := range partners {
			b.union.Or(b.masks[vj])
		}
		for _, i := range b.byOp[vi] {
			b.g.OrAdjacency(i, b.union)
		}
		b.depFree[vi] = b.depFree[vi][:0]
	}
	for _, pair := range b.sameSlotFree {
		// Same resource of R_II: same PE in the same slot. Candidate lists
		// are PE-sorted, so a lockstep walk finds the collisions.
		ci, cj := b.byOp[pair[0]], b.byOp[pair[1]]
		x, y := 0, 0
		for x < len(ci) && y < len(cj) {
			pi, pj := b.pairs[ci[x]].PE, b.pairs[cj[y]].PE
			switch {
			case pi == pj:
				b.g.ClearEdge(ci[x], cj[y])
				x++
				y++
			case pi < pj:
				x++
			default:
				y++
			}
		}
	}
	b.sameSlotFree = b.sameSlotFree[:0]
}

// rebuildAdjacencyFull reconstructs every adjacency row from scratch.
func (b *CompatBuilder) rebuildAdjacencyFull(times []int) {
	for i := range b.pairs {
		b.g.ResetAdjacency(i)
	}
	for vi := 0; vi < b.d.N(); vi++ {
		for vj := vi + 1; vj < b.d.N(); vj++ {
			b.classifyPair(times, vi, vj)
		}
	}
	b.applyDepFree()
}

// rebuildAdjacencyRows reconstructs only the rows touching operations whose
// slot changed: their candidates' rows are cleared outright, every other
// row drops its edges into the changed candidates, and the changed-vs-all
// pair constraints are re-derived.
func (b *CompatBuilder) rebuildAdjacencyRows(times []int) {
	b.changedMask.Reset()
	for _, v := range b.changedList {
		b.changedMask.Or(b.masks[v])
	}
	for v := 0; v < b.d.N(); v++ {
		if b.changed[v] {
			for _, id := range b.byOp[v] {
				b.g.ResetAdjacency(id)
			}
		} else {
			for _, id := range b.byOp[v] {
				b.g.AndNotAdjacency(id, b.changedMask)
			}
		}
	}
	for _, vi := range b.changedList {
		for vj := 0; vj < b.d.N(); vj++ {
			if vj == vi || (b.changed[vj] && vj < vi) {
				continue // the changed-changed pair was handled at the lower id
			}
			if vi < vj {
				b.classifyPair(times, vi, vj)
			} else {
				b.classifyPair(times, vj, vi)
			}
		}
	}
	b.applyDepFree()
}

// BuildCompat constructs the compatibility graph of a scheduled DFG on the
// array at the given II, from scratch. The mapping loop uses a CompatBuilder
// instead to reuse storage and unchanged rows across schedule attempts; the
// two are equivalent (see TestCompatBuilderIncrementalMatchesScratch).
func BuildCompat(d *dfg.DFG, c *arch.CGRA, times []int, ii int, opts CompatOptions) (*Compat, error) {
	b, err := NewCompatBuilder(d, c, ii, opts)
	if err != nil {
		return nil, err
	}
	return b.Build(times)
}

// Candidates returns the compatibility-graph node indices that bind op v.
func (cg *Compat) Candidates(v int) []int { return cg.byOp[v] }

// Nodes returns the number of (operation, PE) pairs.
func (cg *Compat) Nodes() int { return len(cg.Pairs) }

// Edges returns the number of undirected compatibility edges.
func (cg *Compat) Edges() int {
	total := 0
	for i := range cg.Pairs {
		total += cg.G.Degree(i)
	}
	return total / 2
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
