// Package core implements REGIMap itself: the compatibility-graph
// formulation of integrated placement and register allocation (paper
// Appendices A-C), the weight-constrained clique placement (Appendix D), and
// the full learn-from-failure mapping loop (Algorithm 1, Appendix E).
package core

import (
	"fmt"

	"regimap/internal/graph"

	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/dfg"
)

// Pair is one compatibility-graph node: a candidate binding of an operation
// to a PE (the time slot is fixed by the schedule, so the pair fully
// determines a resource of R_II).
type Pair struct {
	Op int // DFG node
	PE int // CGRA PE
}

// Compat is the compatibility graph P between a scheduled DFG and the
// time-extended CGRA R_II (paper Step 1-2, Appendix A-B). Nodes are feasible
// (operation, PE) pairs; an undirected edge means both bindings can coexist;
// directed arc weights carry the register demand of dependences that must be
// register-carried (producer and consumer sharing a PE more than one cycle
// apart).
type Compat struct {
	G     *clique.Graph
	Pairs []Pair
	II    int

	d    *dfg.DFG
	byOp [][]int // candidate node indices per operation
}

// CompatOptions tunes construction; the zero value is this reproduction's
// default model.
type CompatOptions struct {
	// StrictInterIteration applies the paper's conservative Appendix A.2
	// rule: every inter-iteration dependence keeps producer and consumer on
	// one PE, even a one-cycle dependence the output register could forward
	// to a neighbour. The default (false) permits that forwarding — it is
	// safe under the out-register timing model, every mapping is still
	// audited by mapping.Validate and the cycle-accurate simulator, and it
	// avoids inflating II on tight recurrences; the difference is measured
	// by an ablation bench.
	StrictInterIteration bool
}

// depInfo summarizes all dependence arcs of one ordered operation pair.
type depInfo struct {
	needAdj bool // a 1-cycle dependence: consumer must be adjacent (or same)
	carried bool // a register-carried dependence: same PE required
}

// BuildCompat constructs the compatibility graph of a scheduled DFG on the
// array at the given II. times holds the absolute schedule slot of each
// operation.
func BuildCompat(d *dfg.DFG, c *arch.CGRA, times []int, ii int, opts CompatOptions) (*Compat, error) {
	if len(times) != d.N() {
		return nil, fmt.Errorf("core: %d schedule slots for %d ops", len(times), d.N())
	}
	if ii <= 0 {
		return nil, fmt.Errorf("core: non-positive II %d", ii)
	}

	// Enumerate candidate pairs: operation x supporting PE. The schedule has
	// already pruned the time dimension — this is the paper's point that
	// scheduling shrinks the product graph (only |V| x |PEs| pairs remain
	// instead of |V| x |PEs| x II).
	var pairs []Pair
	byOp := make([][]int, d.N())
	for v := range d.Nodes {
		if times[v] < 0 {
			return nil, fmt.Errorf("core: op %s unscheduled", d.Nodes[v].Name)
		}
		for p := 0; p < c.NumPEs(); p++ {
			if !c.Supports(p, d.Nodes[v].Kind) {
				continue
			}
			byOp[v] = append(byOp[v], len(pairs))
			pairs = append(pairs, Pair{Op: v, PE: p})
		}
		if len(byOp[v]) == 0 {
			return nil, fmt.Errorf("core: no PE supports op %s (%s)", d.Nodes[v].Name, d.Nodes[v].Kind)
		}
	}

	g := clique.NewGraph(len(pairs), c.NumRegs)
	cg := &Compat{G: g, Pairs: pairs, II: ii, d: d, byOp: byOp}

	// Summarize dependences once per ordered operation pair (Appendix A.2),
	// and compute each operation's register demand R[i] from the schedule:
	// parallel arcs and multiple consumers of one value share live copies, so
	// the *longest* register-carried span determines the demand —
	// ceil(maxSpan/II) rotating registers, exactly the accounting of
	// mapping.RegisterPressure. The demand is placement-independent because
	// every register-carried consumer is forced onto the producer's PE.
	deps := map[[2]int]*depInfo{}
	regDemand := make([]int, d.N())
	maxCarried := make([]int, d.N())
	for _, e := range d.Edges {
		span := times[e.To] - times[e.From] + ii*e.Dist
		if span < d.Nodes[e.From].Kind.Latency() {
			return nil, fmt.Errorf("core: schedule violates edge %s->%s (span %d)",
				d.Nodes[e.From].Name, d.Nodes[e.To].Name, span)
		}
		forwardable := span == 1 && (e.Dist == 0 || !opts.StrictInterIteration)
		if span > 1 && span > maxCarried[e.From] {
			maxCarried[e.From] = span
		}
		if e.From == e.To {
			continue // self recurrence: no pairwise constraint, demand only
		}
		k := [2]int{e.From, e.To}
		di := deps[k]
		if di == nil {
			di = &depInfo{}
			deps[k] = di
		}
		if forwardable {
			di.needAdj = true
		} else {
			di.carried = true
		}
	}
	anyDemand := false
	for v, span := range maxCarried {
		if span > 1 {
			regDemand[v] = ceilDiv(span, ii)
			anyDemand = true
		}
	}

	// Register weights (Appendix B, Theorem C.1): a value parked in a PE's
	// file is paid for by *every* mapping resident on that PE, so a node's
	// outgoing weight sum inside a clique equals the total register demand of
	// its PE. The per-node budget check is then exactly the per-PE capacity
	// constraint. Own demand is the node's base weight; co-residents charge
	// each other their demands on same-PE arcs below.
	for v, demand := range regDemand {
		if demand == 0 {
			continue
		}
		for _, id := range byOp[v] {
			g.AddBase(id, demand)
		}
	}

	// Install the register weights as a computed function (Appendix B,
	// Theorem C.1 as restated above): w(u -> v) is v's demand when the two
	// bindings share a PE. Keeping this out of a hash map keeps the clique
	// search's inner loops cheap.
	g.SetWeightFunc(
		func(u, v int) int {
			if pairs[u].PE != pairs[v].PE {
				return 0
			}
			return regDemand[pairs[v].Op]
		},
		func(u int) bool {
			// u has outgoing weight whenever any same-PE partner could have
			// demand; over-approximating with "any demand exists" is cheap
			// and still skips the common all-zero kernels.
			return anyDemand
		},
		func(u int) int { return pairs[u].PE })

	// Candidate masks per operation, for the bulk fast path below.
	masks := make([]*graph.Bitset, d.N())
	for v := range masks {
		masks[v] = graph.NewBitset(len(pairs))
		for _, id := range byOp[v] {
			masks[v].Set(id)
		}
	}

	// Pairwise compatibility (Appendix A.2) over operation pairs first so
	// the dependence summary is fetched once, then over PE bindings. Pairs
	// with no dependence between them — the overwhelming majority on large
	// arrays — are fully compatible except for resource collisions: their
	// edges are added as one union-mask OR per candidate, with the same-slot
	// same-PE collisions cleared afterwards.
	depFree := make([][]int, d.N())
	var sameSlotFree [][2]int
	for vi := 0; vi < d.N(); vi++ {
		si := times[vi] % ii
		memI := d.Nodes[vi].Kind.IsMem()
		for vj := vi + 1; vj < d.N(); vj++ {
			sj := times[vj] % ii
			sameSlot := si == sj
			memClash := sameSlot && memI && d.Nodes[vj].Kind.IsMem()
			fwd := deps[[2]int{vi, vj}] // vi produces for vj
			rev := deps[[2]int{vj, vi}] // vj produces for vi

			if fwd == nil && rev == nil && !memClash {
				depFree[vi] = append(depFree[vi], vj)
				depFree[vj] = append(depFree[vj], vi)
				if sameSlot {
					sameSlotFree = append(sameSlotFree, [2]int{vi, vj})
				}
				continue
			}

			for _, i := range byOp[vi] {
				pi := pairs[i].PE
				for _, j := range byOp[vj] {
					pj := pairs[j].PE
					if sameSlot && pi == pj {
						continue // same resource of R_II
					}
					if memClash && c.RowOf(pi) == c.RowOf(pj) {
						continue // shared row bus
					}
					samePE := pi == pj
					if fwd != nil {
						if fwd.carried && !samePE {
							continue
						}
						if fwd.needAdj && !c.Connected(pi, pj) {
							continue
						}
					}
					if rev != nil {
						if rev.carried && !samePE {
							continue
						}
						if rev.needAdj && !c.Connected(pj, pi) {
							continue
						}
					}
					g.AddEdge(i, j)
				}
			}
		}
	}
	union := graph.NewBitset(len(pairs))
	for vi, partners := range depFree {
		if len(partners) == 0 {
			continue
		}
		union.Reset()
		for _, vj := range partners {
			union.Or(masks[vj])
		}
		for _, i := range byOp[vi] {
			g.OrAdjacency(i, union)
		}
	}
	for _, pair := range sameSlotFree {
		// Same resource of R_II: same PE in the same slot. Candidate lists
		// are PE-sorted, so a lockstep walk finds the collisions.
		ci, cj := byOp[pair[0]], byOp[pair[1]]
		x, y := 0, 0
		for x < len(ci) && y < len(cj) {
			pi, pj := pairs[ci[x]].PE, pairs[cj[y]].PE
			switch {
			case pi == pj:
				g.ClearEdge(ci[x], cj[y])
				x++
				y++
			case pi < pj:
				x++
			default:
				y++
			}
		}
	}
	return cg, nil
}

// Candidates returns the compatibility-graph node indices that bind op v.
func (cg *Compat) Candidates(v int) []int { return cg.byOp[v] }

// Nodes returns the number of (operation, PE) pairs.
func (cg *Compat) Nodes() int { return len(cg.Pairs) }

// Edges returns the number of undirected compatibility edges.
func (cg *Compat) Edges() int {
	total := 0
	for i := range cg.Pairs {
		total += cg.G.Degree(i)
	}
	return total / 2
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
