package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/kernels"
	"regimap/internal/power"
	"regimap/internal/sim"
)

// --- Figure 2: the paper's worked example ---------------------------------

// Figure2Result reproduces the paper's motivating example: on a 1x2 CGRA the
// 4-op kernel maps at II=2 when the 2-entry register files are used and
// strictly worse without them.
type Figure2Result struct {
	IIWithRegisters    int
	IIWithoutRegisters int
	SimulatedOK        bool
}

// fig2Kernel is the Figure 2 DFG: a->b->c->d plus a->d.
func fig2Kernel() *dfg.DFG {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build()
}

// Figure2 regenerates the worked example.
func Figure2() (Figure2Result, error) {
	var r Figure2Result
	withRegs, stats, err := core.Map(context.Background(), fig2Kernel(), arch.NewMesh(1, 2, 2), core.Options{})
	if err != nil {
		return r, fmt.Errorf("experiments: figure 2 with registers: %w", err)
	}
	r.IIWithRegisters = stats.II
	if err := sim.Check(withRegs, 6); err != nil {
		return r, fmt.Errorf("experiments: figure 2 simulation: %w", err)
	}
	r.SimulatedOK = true
	_, statsNoRegs, err := core.Map(context.Background(), fig2Kernel(), arch.NewMesh(1, 2, 0), core.Options{})
	if err != nil {
		return r, fmt.Errorf("experiments: figure 2 without registers: %w", err)
	}
	r.IIWithoutRegisters = statsNoRegs.II
	return r, nil
}

// Table renders the result.
func (r Figure2Result) Table() string {
	var b strings.Builder
	formatHeader(&b, "Figure 2 — registers cut II on the worked example (1x2 CGRA)")
	fmt.Fprintf(&b, "II with 2 registers/PE:    %d (paper: 2)\n", r.IIWithRegisters)
	fmt.Fprintf(&b, "II with 0 registers/PE:    %d (paper routes through PEs at II=4)\n", r.IIWithoutRegisters)
	fmt.Fprintf(&b, "functional simulation:     %v\n", r.SimulatedOK)
	return b.String()
}

// --- Figure 5: compatibility-graph size --------------------------------------

// Figure5Result shows how scheduling prunes the operation-resource product
// graph before the clique search.
type Figure5Result struct {
	Ops, PEs     int
	II           int
	ProductNodes int // |V_D| x |R_II| without schedule pruning
	CompatNodes  int // after scheduling fixes the time dimension
	CompatEdges  int
}

// Figure5 builds the paper's example compatibility graph (a scheduled DFG on
// a 1x2 CGRA at II=2).
func Figure5() (Figure5Result, error) {
	d := fig2Kernel()
	c := arch.NewMesh(1, 2, 2)
	times := []int{0, 1, 2, 3}
	cg, err := core.BuildCompat(d, c, times, 2, core.CompatOptions{})
	if err != nil {
		return Figure5Result{}, err
	}
	return Figure5Result{
		Ops:          d.N(),
		PEs:          c.NumPEs(),
		II:           2,
		ProductNodes: d.N() * c.NumPEs() * 2,
		CompatNodes:  cg.Nodes(),
		CompatEdges:  cg.Edges(),
	}, nil
}

// Table renders the result.
func (r Figure5Result) Table() string {
	var b strings.Builder
	formatHeader(&b, "Figure 5 — scheduling prunes the compatibility graph")
	fmt.Fprintf(&b, "%d ops x %d PEs x II=%d product graph: %d nodes\n", r.Ops, r.PEs, r.II, r.ProductNodes)
	fmt.Fprintf(&b, "compatibility graph after scheduling: %d nodes, %d edges\n", r.CompatNodes, r.CompatEdges)
	return b.String()
}

// --- Figure 6: per-loop performance, REGIMap vs DRESC (and EMS) -----------

// Figure6Result is the paper's headline comparison on a 4x4 CGRA with 4
// registers per PE.
type Figure6Result struct {
	Config Config
	Rows   []LoopRow // all kernels x all mappers, kernel-major

	// RatioRes / RatioRec are the geometric-mean performance ratios
	// REGIMap/DRESC per loop group (paper: ~1.89x res-bounded, parity
	// rec-bounded).
	RatioRes, RatioRec float64
}

// Figure6 maps every kernel with every mapper. Kernels run concurrently
// under cfg.Workers; rows and ratios are aggregated in kernel order so the
// result is identical at any worker count.
func Figure6(cfg Config) Figure6Result {
	r := Figure6Result{Config: cfg}
	ks := suite(cfg, nil)
	type trio struct{ reg, dr, em LoopRow }
	trios := runIndexed(cfg.workerCount(), len(ks), func(i int) trio {
		return trio{
			reg: RunLoop(ks[i], REGIMap, cfg),
			dr:  RunLoop(ks[i], DRESC, cfg),
			em:  RunLoop(ks[i], EMS, cfg),
		}
	})
	var ratioRes, ratioRec []float64
	for _, tr := range trios {
		r.Rows = append(r.Rows, tr.reg, tr.dr, tr.em)
		if tr.reg.OK && tr.dr.OK {
			ratio := tr.reg.Perf / tr.dr.Perf
			if tr.reg.Group == kernels.ResBounded {
				ratioRes = append(ratioRes, ratio)
			} else {
				ratioRec = append(ratioRec, ratio)
			}
		}
	}
	r.RatioRes = geomean(ratioRes)
	r.RatioRec = geomean(ratioRec)
	return r
}

// Table renders the per-loop MII/II bars of Figure 6 as a text table.
func (r Figure6Result) Table() string {
	var b strings.Builder
	formatHeader(&b, fmt.Sprintf("Figure 6 — MII/II per loop on %s", r.Config.CGRA()))
	fmt.Fprintf(&b, "%-16s %-12s %4s %4s  %-28s %-28s %-28s\n",
		"loop", "group", "ops", "MII", "REGIMap II (perf)", "DRESC II (perf)", "EMS II (perf)")
	for i := 0; i+2 < len(r.Rows)+1 && i < len(r.Rows); i += 3 {
		reg, dr, em := r.Rows[i], r.Rows[i+1], r.Rows[i+2]
		fmt.Fprintf(&b, "%-16s %-12s %4d %4d  %-28s %-28s %-28s\n",
			reg.Kernel, reg.Group, reg.Ops, reg.MII,
			cell(reg), cell(dr), cell(em))
	}
	fmt.Fprintf(&b, "\ngeomean perf ratio REGIMap/DRESC: res-bounded %.2fx (paper ~1.89x), rec-bounded %.2fx (paper ~parity)\n",
		r.RatioRes, r.RatioRec)
	return b.String()
}

func cell(row LoopRow) string {
	if !row.OK {
		return "failed"
	}
	return fmt.Sprintf("II=%d (%.2f) %s", row.II, row.Perf, fmtDuration(row.CompileTime))
}

// --- Section 6.2 + Figure 7: compile time and register-file sweep ----------

// SweepPoint aggregates one mapper at one configuration.
type SweepPoint struct {
	Config    Config
	Mapper    Mapper
	Group     kernels.Boundedness
	MeanPerf  float64
	TotalTime time.Duration
	Mapped    int
	Total     int
}

// Figure7Result sweeps the register-file size on the 4x4 array (paper
// Figure 7 plus the Section 6.2 compile-time ratios).
type Figure7Result struct {
	RegSizes []int
	Points   []SweepPoint // indexed [regIdx*4 + mapperGroup], see Table
}

// Figure7 runs the sweep for register files of 2, 4 and 8 entries.
func Figure7(base Config) Figure7Result {
	r := Figure7Result{RegSizes: []int{2, 4, 8}}
	for _, regs := range r.RegSizes {
		cfg := base
		cfg.Rows, cfg.Cols, cfg.Regs = 4, 4, regs
		for _, group := range []kernels.Boundedness{kernels.ResBounded, kernels.RecBounded} {
			for _, mapper := range []Mapper{REGIMap, DRESC} {
				r.Points = append(r.Points, sweepPoint(cfg, mapper, group))
			}
		}
	}
	return r
}

func sweepPoint(cfg Config, mapper Mapper, group kernels.Boundedness) SweepPoint {
	pt := SweepPoint{Config: cfg, Mapper: mapper, Group: group}
	ks := suite(cfg, groupPtr(group))
	rows := runIndexed(cfg.workerCount(), len(ks), func(i int) LoopRow {
		return RunLoop(ks[i], mapper, cfg)
	})
	var perfs []float64
	for _, row := range rows {
		pt.Total++
		pt.TotalTime += row.CompileTime
		if row.OK {
			pt.Mapped++
			perfs = append(perfs, row.Perf)
		}
	}
	pt.MeanPerf = mean(perfs)
	return pt
}

// Ratio returns DRESC time / REGIMap time for one register size and group
// (the Section 6.2 numbers: ~37x..56x res-bounded, ~6x..8x rec-bounded).
func (r Figure7Result) Ratio(regs int, group kernels.Boundedness) float64 {
	var reg, dr *SweepPoint
	for i := range r.Points {
		p := &r.Points[i]
		if p.Config.Regs != regs || p.Group != group {
			continue
		}
		switch p.Mapper {
		case REGIMap:
			reg = p
		case DRESC:
			dr = p
		}
	}
	if reg == nil || dr == nil || reg.TotalTime == 0 {
		return 0
	}
	return float64(dr.TotalTime) / float64(reg.TotalTime)
}

// Table renders the sweep.
func (r Figure7Result) Table() string {
	var b strings.Builder
	formatHeader(&b, "Figure 7 / §6.2 — register-file sweep on 4x4 (perf + compile time)")
	fmt.Fprintf(&b, "%-6s %-12s %-8s %10s %14s %8s\n", "regs", "group", "mapper", "mean perf", "compile time", "mapped")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-6d %-12s %-8s %10.2f %14s %5d/%d\n",
			p.Config.Regs, p.Group, p.Mapper, p.MeanPerf, fmtDuration(p.TotalTime), p.Mapped, p.Total)
	}
	b.WriteString("\ncompile-time ratio DRESC/REGIMap (paper: res ~37x at 2 regs rising to ~56x; rec ~6x..8x):\n")
	for _, regs := range r.RegSizes {
		fmt.Fprintf(&b, "  %d regs: res-bounded %.1fx, rec-bounded %.1fx\n",
			regs, r.Ratio(regs, kernels.ResBounded), r.Ratio(regs, kernels.RecBounded))
	}
	return b.String()
}

// --- Figure 8: CGRA size sweep ---------------------------------------------

// Figure8Result sweeps the array size at 2 registers per PE on the
// res-bounded group.
type Figure8Result struct {
	Sizes  []int // square array edge lengths
	Points []SweepPoint
}

// Figure8 runs the 2x2 / 4x4 / 8x8 sweep.
func Figure8(base Config) Figure8Result {
	r := Figure8Result{Sizes: []int{2, 4, 8}}
	for _, size := range r.Sizes {
		cfg := base
		cfg.Rows, cfg.Cols, cfg.Regs = size, size, 2
		for _, mapper := range []Mapper{REGIMap, DRESC} {
			r.Points = append(r.Points, sweepPoint(cfg, mapper, kernels.ResBounded))
		}
	}
	return r
}

// Table renders the sweep.
func (r Figure8Result) Table() string {
	var b strings.Builder
	formatHeader(&b, "Figure 8 — CGRA size sweep at 2 regs/PE, res-bounded loops")
	fmt.Fprintf(&b, "%-6s %-8s %10s %14s %8s\n", "size", "mapper", "mean perf", "compile time", "mapped")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%dx%-4d %-8s %10.2f %14s %5d/%d\n",
			p.Config.Rows, p.Config.Cols, p.Mapper, p.MeanPerf, fmtDuration(p.TotalTime), p.Mapped, p.Total)
	}
	return b.String()
}

// --- Architecture sweep: the zoo × register-file size -----------------------

// ArchSweepResult maps the res-bounded suite on named architectures at
// several register-file sizes: performance versus topology versus N_R.
type ArchSweepResult struct {
	Archs    []string
	RegSizes []int
	Points   []SweepPoint
}

// ArchSweep runs REGIMap over the res-bounded suite on the given named
// architectures (default: the whole registry) with register files of 2, 4
// and 8 entries — the zoo counterpart of the Figure 7 sweep.
func ArchSweep(base Config, archs ...string) ArchSweepResult {
	if len(archs) == 0 {
		archs = arch.ArchNames()
	}
	r := ArchSweepResult{Archs: archs, RegSizes: []int{2, 4, 8}}
	for _, name := range archs {
		for _, regs := range r.RegSizes {
			cfg := base
			cfg.Arch, cfg.Rows, cfg.Cols, cfg.Regs = name, 0, 0, regs
			r.Points = append(r.Points, sweepPoint(cfg, REGIMap, kernels.ResBounded))
		}
	}
	return r
}

// Table renders the sweep.
func (r ArchSweepResult) Table() string {
	var b strings.Builder
	formatHeader(&b, "Architecture sweep — the zoo × register-file size, res-bounded loops")
	fmt.Fprintf(&b, "%-16s %-6s %10s %14s %8s\n", "arch", "regs", "mean perf", "compile time", "mapped")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-16s %-6d %10.2f %14s %5d/%d\n",
			p.Config.Arch, p.Config.Regs, p.MeanPerf, fmtDuration(p.TotalTime), p.Mapped, p.Total)
	}
	return b.String()
}

// --- Section 6.3: rescheduling ablation -------------------------------------

// AblationResult measures how many loops map at a higher II when REGIMap's
// learn-from-failure rescheduling is disabled (paper: ~90% of res-bounded
// loops, ~30% of rec-bounded loops).
type AblationResult struct {
	Config             Config
	WorseRes, TotalRes int
	WorseRec, TotalRec int
}

// RescheduleAblation runs REGIMap with and without rescheduling on every
// kernel, concurrently under cfg.Workers.
func RescheduleAblation(cfg Config) AblationResult {
	r := AblationResult{Config: cfg}
	c := cfg.CGRA()
	ks := kernels.All()
	type verdict struct {
		group  kernels.Boundedness
		mapped bool
		worse  bool
	}
	verdicts := runIndexed(cfg.workerCount(), len(ks), func(i int) verdict {
		d := ks[i].Build()
		v := verdict{group: kernels.Classify(d, c.NumPEs(), c.Rows)}
		ctx, cancel := cfg.runCtx()
		defer cancel()
		_, full, errFull := core.Map(ctx, d, cfg.CGRA(), cfg.coreOptions())
		if errFull != nil {
			return v // only count loops the full mapper handles
		}
		v.mapped = true
		ablOpts := cfg.coreOptions()
		ablOpts.DisableReschedule = true
		ablOpts.DisableRouteInsertion = true
		ablOpts.DisableThinning = true
		_, ablated, errAbl := core.Map(ctx, d, cfg.CGRA(), ablOpts)
		v.worse = errAbl != nil || ablated.II > full.II
		return v
	})
	for _, v := range verdicts {
		if !v.mapped {
			continue
		}
		if v.group == kernels.ResBounded {
			r.TotalRes++
			if v.worse {
				r.WorseRes++
			}
		} else {
			r.TotalRec++
			if v.worse {
				r.WorseRec++
			}
		}
	}
	return r
}

// Table renders the ablation.
func (r AblationResult) Table() string {
	var b strings.Builder
	formatHeader(&b, "§6.3 — learning from failure (rescheduling ablation)")
	fmt.Fprintf(&b, "res-bounded loops mapped worse without rescheduling: %d/%d (%.0f%%; paper ~90%%)\n",
		r.WorseRes, r.TotalRes, percent(r.WorseRes, r.TotalRes))
	fmt.Fprintf(&b, "rec-bounded loops mapped worse without rescheduling: %d/%d (%.0f%%; paper ~30%%)\n",
		r.WorseRec, r.TotalRec, percent(r.WorseRec, r.TotalRec))
	return b.String()
}

func percent(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// --- Section 6.5: power efficiency ------------------------------------------

// PowerResult carries the Section 6.5 estimate for the measured IPC.
type PowerResult struct {
	Config   Config
	MeanIPC  float64
	Estimate power.Estimate
}

// PowerEfficiency measures REGIMap's mean IPC on the res-bounded group
// (kernels mapped concurrently under cfg.Workers) and applies the paper's
// closed-form estimate.
func PowerEfficiency(cfg Config) PowerResult {
	ks := suite(cfg, groupPtr(kernels.ResBounded))
	rows := runIndexed(cfg.workerCount(), len(ks), func(i int) LoopRow {
		return RunLoop(ks[i], REGIMap, cfg)
	})
	var ipcs []float64
	for _, row := range rows {
		if row.OK {
			ipcs = append(ipcs, row.IPC)
		}
	}
	ipc := mean(ipcs)
	return PowerResult{Config: cfg, MeanIPC: ipc, Estimate: power.FromIPC(ipc)}
}

// Table renders the estimate.
func (r PowerResult) Table() string {
	var b strings.Builder
	formatHeader(&b, "§6.5 — power-efficiency estimate (ADRES-class constants)")
	e := r.Estimate
	fmt.Fprintf(&b, "mean IPC of res-bounded mappings: %.2f (paper ~10.75 on its suite)\n", r.MeanIPC)
	fmt.Fprintf(&b, "CGRA throughput:  %.2f GOps/s (paper ~3.3)\n", e.CGRAOpsPerSec/1e9)
	fmt.Fprintf(&b, "CGRA energy/op:   %.1f pJ (paper ~24)\n", e.CGRAEnergyPerOp*1e12)
	fmt.Fprintf(&b, "Core2 energy/op:  %.1f nJ (paper 2)\n", e.CPUEnergyPerOp*1e9)
	fmt.Fprintf(&b, "energy advantage: %.0fx; ops-per-watt advantage: %.0fx\n", e.EnergyRatio, e.EfficiencyRatio)
	return b.String()
}
