package experiments

import (
	"strings"
	"testing"

	"regimap/internal/kernels"
	"regimap/internal/obs"
)

// TestPhaseRow maps one small kernel and checks the pass spans actually land
// in the breakdown: a successful run schedules, builds a compat graph, and
// searches for a clique, so those durations (and the escalation counters)
// must be populated and bounded by the total.
func TestPhaseRow(t *testing.T) {
	k, ok := kernels.ByName("fir8")
	if !ok {
		t.Fatal("kernel fir8 not in suite")
	}
	row := phaseRow(k, quickCfg(4))
	if !row.OK {
		t.Fatalf("fir8 must map on the paper array, got OK=false")
	}
	if row.II < row.MII || row.MII <= 0 {
		t.Errorf("II=%d MII=%d: want 0 < MII <= II", row.II, row.MII)
	}
	if row.IIsTried < 1 || row.Attempts < row.IIsTried {
		t.Errorf("IIsTried=%d Attempts=%d: want >=1 attempt per II tried", row.IIsTried, row.Attempts)
	}
	if row.Schedule <= 0 || row.Compat <= 0 || row.Clique <= 0 {
		t.Errorf("phase durations schedule=%v compat=%v clique=%v: all must be positive",
			row.Schedule, row.Compat, row.Clique)
	}
	if sum := row.Schedule + row.Compat + row.Clique + row.Learn; sum > row.Total {
		t.Errorf("pass durations sum %v exceeds total %v", sum, row.Total)
	}
}

// TestPhaseBreakdownTableShape renders a tiny result and checks the header,
// one row per kernel, the suite footer, and the share line.
func TestPhaseBreakdownTableShape(t *testing.T) {
	k, ok := kernels.ByName("fir8")
	if !ok {
		t.Fatal("kernel fir8 not in suite")
	}
	r := PhaseResult{Rows: []PhaseRow{phaseRow(k, quickCfg(4))}}
	table := r.Table()
	for _, want := range []string{"phase-time breakdown", "schedule", "clique", "fir8", "suite", "share of total"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestConfigTraceThreading proves a Config.Trace tracer reaches the mapper:
// RunLoop under a MemSink-backed tracer must record the engine's spans.
func TestConfigTraceThreading(t *testing.T) {
	k, ok := kernels.ByName("fir8")
	if !ok {
		t.Fatal("kernel fir8 not in suite")
	}
	sink := &obs.MemSink{}
	cfg := quickCfg(4)
	cfg.Trace = obs.New(sink)
	row := RunLoop(k, REGIMap, cfg)
	if !row.OK {
		t.Fatalf("fir8 must map, got OK=false")
	}
	byName := sink.DurByName()
	for _, want := range []string{"pass.schedule", "pass.compat", "pass.clique", "map.done"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace missing %q events (have %v)", want, sink.Names())
		}
	}
}
