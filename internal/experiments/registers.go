package experiments

import (
	"fmt"
	"strings"

	"regimap/internal/core"
	"regimap/internal/kernels"
)

// registerBenefitKernel is one kernel's double mapping (with and without
// register files), run independently so the suite parallelizes cleanly.
func registerBenefitKernel(cfg, noRegs Config, k kernels.Kernel) RegisterBenefitRow {
	d := k.Build()
	c := cfg.CGRA()
	row := RegisterBenefitRow{
		Kernel: k.Name,
		Group:  kernels.Classify(d, c.NumPEs(), c.Rows),
	}
	ctx, cancel := cfg.runCtx()
	defer cancel()
	_, with, errWith := core.Map(ctx, d, c, cfg.coreOptions())
	row.MII = with.MII
	if errWith != nil {
		return row
	}
	row.IIWith = with.II
	_, without, errWithout := core.Map(ctx, k.Build(), noRegs.CGRA(), noRegs.coreOptions())
	if errWithout == nil {
		row.IIWithout = without.II
		row.Speedup = float64(without.II) / float64(with.II)
	}
	return row
}

// RegisterBenefitRow compares one kernel mapped with and without local
// register files.
type RegisterBenefitRow struct {
	Kernel            string
	Group             kernels.Boundedness
	MII               int
	IIWith, IIWithout int // 0 = failed
	Speedup           float64
}

// RegisterBenefitResult is the paper's central thesis as a suite-wide table:
// how much do the local register files buy over routing every value through
// PEs (the register-free model is what the paper's Figure 2(c) and the
// EPIMap-class mappers it improves on are limited to)?
type RegisterBenefitResult struct {
	Config      Config
	Rows        []RegisterBenefitRow
	MeanSpeedup float64 // geomean of II-without / II-with over loops both map
	FailWithout int     // loops unmappable without registers
	TotalMapped int
}

// RegisterBenefit maps every kernel twice: on the configured array and on
// the same array with the register files removed. Kernels run concurrently
// under cfg.Workers; aggregation follows kernel order.
func RegisterBenefit(cfg Config) RegisterBenefitResult {
	r := RegisterBenefitResult{Config: cfg}
	noRegs := cfg
	noRegs.Regs = 0
	ks := suite(cfg, nil)
	r.Rows = runIndexed(cfg.workerCount(), len(ks), func(i int) RegisterBenefitRow {
		return registerBenefitKernel(cfg, noRegs, ks[i])
	})
	var speedups []float64
	for _, row := range r.Rows {
		if row.IIWith == 0 {
			continue
		}
		r.TotalMapped++
		if row.IIWithout == 0 {
			r.FailWithout++
		} else {
			speedups = append(speedups, row.Speedup)
		}
	}
	r.MeanSpeedup = geomean(speedups)
	return r
}

// Table renders the comparison.
func (r RegisterBenefitResult) Table() string {
	var b strings.Builder
	formatHeader(&b, fmt.Sprintf("Register benefit — II with %d regs/PE vs none (%s)", r.Config.Regs, r.Config.CGRA()))
	fmt.Fprintf(&b, "%-16s %-12s %4s %10s %10s %9s\n", "loop", "group", "MII", "II (regs)", "II (none)", "speedup")
	for _, row := range r.Rows {
		with, without, speedup := "failed", "failed", "-"
		if row.IIWith > 0 {
			with = fmt.Sprintf("%d", row.IIWith)
		}
		if row.IIWithout > 0 {
			without = fmt.Sprintf("%d", row.IIWithout)
			if row.Speedup > 0 {
				speedup = fmt.Sprintf("%.2fx", row.Speedup)
			}
		}
		fmt.Fprintf(&b, "%-16s %-12s %4d %10s %10s %9s\n", row.Kernel, row.Group, row.MII, with, without, speedup)
	}
	fmt.Fprintf(&b, "\ngeomean speedup from registers: %.2fx; %d/%d loops unmappable without them\n",
		r.MeanSpeedup, r.FailWithout, r.TotalMapped)
	return b.String()
}
