// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 6) on this reproduction's substrate: the
// kernel suite of internal/kernels mapped by REGIMap (internal/core), the
// DRESC baseline (internal/dresc), and the EMS-style baseline
// (internal/ems). Each experiment returns a structured result and renders
// the same rows/series the paper reports; absolute numbers differ from the
// authors' GCC/testbed setup, but the shapes under test — who wins, by
// roughly what factor, and how the trends move with register-file size and
// array size — are asserted by the integration tests and recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dresc"
	"regimap/internal/ems"
	"regimap/internal/kernels"
)

// Mapper selects one of the three mappers under comparison.
type Mapper string

// The mappers of the evaluation.
const (
	REGIMap Mapper = "REGIMap"
	DRESC   Mapper = "DRESC"
	EMS     Mapper = "EMS"
)

// Config fixes one experimental setup.
type Config struct {
	Rows, Cols int
	Regs       int
	Seed       int64 // DRESC annealing seed
	// Quick shrinks the DRESC annealing budget so smoke tests finish fast;
	// benchmarks and the experiments binary use the full budget.
	Quick bool
}

// Paper4x4 is the evaluation's default array: 4x4 mesh, 4 registers per PE.
func Paper4x4(regs int) Config { return Config{Rows: 4, Cols: 4, Regs: regs} }

// CGRA materializes the configured array.
func (c Config) CGRA() *arch.CGRA {
	rows, cols := c.Rows, c.Cols
	if rows == 0 {
		rows = 4
	}
	if cols == 0 {
		cols = 4
	}
	return arch.NewMesh(rows, cols, c.Regs)
}

func (c Config) drescOptions() dresc.Options {
	o := dresc.Options{Seed: c.Seed}
	if c.Quick {
		o.MovesPerTemperature = 6 * 16
		o.Cooling = 0.8
	}
	return o
}

// LoopRow is one (kernel, mapper) measurement — a row of Figure 6 and the
// unit all other experiments aggregate.
type LoopRow struct {
	Kernel      string
	Group       kernels.Boundedness
	Ops         int
	Mapper      Mapper
	MII, II     int
	Perf        float64 // MII/II; 0 on failure
	IPC         float64 // ops per cycle achieved; 0 on failure
	CompileTime time.Duration
	OK          bool
}

// RunLoop maps one kernel with one mapper on the configured array.
func RunLoop(k kernels.Kernel, mapper Mapper, cfg Config) LoopRow {
	d := k.Build()
	c := cfg.CGRA()
	row := LoopRow{
		Kernel: k.Name,
		Group:  kernels.Classify(d, c.NumPEs(), c.Rows),
		Ops:    d.N(),
		Mapper: mapper,
	}
	switch mapper {
	case REGIMap:
		m, stats, err := core.Map(d, c, core.Options{})
		row.MII, row.CompileTime = stats.MII, stats.Elapsed
		if err == nil {
			row.II, row.Perf, row.OK = stats.II, stats.Perf(), true
			row.IPC = m.IPC()
		}
	case DRESC:
		p, stats, err := dresc.Map(d, c, cfg.drescOptions())
		row.MII, row.CompileTime = stats.MII, stats.Elapsed
		if err == nil {
			row.II, row.Perf, row.OK = stats.II, stats.Perf(), true
			row.IPC = float64(p.D.N()) / float64(stats.II)
		}
	case EMS:
		m, stats, err := ems.Map(d, c, ems.Options{})
		row.MII, row.CompileTime = stats.MII, stats.Elapsed
		if err == nil {
			row.II, row.Perf, row.OK = stats.II, stats.Perf(), true
			row.IPC = m.IPC()
		}
	default:
		panic("experiments: unknown mapper " + string(mapper))
	}
	return row
}

// suite returns the kernels of one boundedness group on the configured
// array, or all kernels when group is nil.
func suite(cfg Config, group *kernels.Boundedness) []kernels.Kernel {
	c := cfg.CGRA()
	var out []kernels.Kernel
	for _, k := range kernels.All() {
		if group == nil || kernels.Classify(k.Build(), c.NumPEs(), c.Rows) == *group {
			out = append(out, k)
		}
	}
	return out
}

func groupPtr(b kernels.Boundedness) *kernels.Boundedness { return &b }

// mean returns the arithmetic mean of xs (0 for empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// geomean returns the geometric mean of positive xs (0 for empty).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

func formatHeader(b *strings.Builder, title string) {
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(title)))
	b.WriteByte('\n')
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
