// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 6) on this reproduction's substrate: the
// kernel suite of internal/kernels mapped by REGIMap (internal/core), the
// DRESC baseline (internal/dresc), and the EMS-style baseline
// (internal/ems). Each experiment returns a structured result and renders
// the same rows/series the paper reports; absolute numbers differ from the
// authors' GCC/testbed setup, but the shapes under test — who wins, by
// roughly what factor, and how the trends move with register-file size and
// array size — are asserted by the integration tests and recorded in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regimap/internal/arch"
	"regimap/internal/clique"
	"regimap/internal/core"
	"regimap/internal/dresc"
	"regimap/internal/ems"
	"regimap/internal/kernels"
	"regimap/internal/obs"
	"regimap/internal/portfolio"
)

// Mapper selects one of the three mappers under comparison.
type Mapper string

// The mappers of the evaluation.
const (
	REGIMap Mapper = "REGIMap"
	DRESC   Mapper = "DRESC"
	EMS     Mapper = "EMS"
)

// Config fixes one experimental setup.
type Config struct {
	Rows, Cols int
	Regs       int
	// Arch, when set, overrides Rows/Cols/Regs with a named architecture
	// from the registry or an inline ADL description (see internal/arch);
	// a Regs override may still be appended by the register sweeps.
	Arch string
	Seed int64 // DRESC annealing seed
	// Quick shrinks the DRESC annealing budget so smoke tests finish fast;
	// benchmarks and the experiments binary use the full budget.
	Quick bool
	// Workers bounds how many kernels the suite drivers (Figure 6, the
	// sweeps, the ablation, the register study) map concurrently (<=1:
	// serial). Results are deterministic regardless of Workers — every row
	// is collected by kernel index, never by completion order — but the
	// per-row CompileTime fields measure wall-clock under contention, so
	// single-kernel timing comparisons should use Workers <= 1.
	Workers int
	// Timeout caps each individual mapper run (0: unbounded), enforced via
	// the mappers' context support; a timed-out run reports OK=false.
	Timeout time.Duration
	// Portfolio races this many diversified REGIMap attempts per II through
	// internal/portfolio (<=1: plain core.Map). The deterministic tiebreak
	// keeps rows reproducible for any value.
	Portfolio int
	// CliqueWorkers parallelizes the clique search inside every REGIMap run
	// (<=1: sequential). Mappings are byte-identical at any value — the
	// parallel engine's reduction is deterministic (DESIGN.md section 8g) —
	// so it composes freely with Workers and Portfolio.
	CliqueWorkers int
	// DRESCRestarts races this many seed-derived annealing chains per II
	// inside every DRESC run (<=1: the single-chain escalation). The result
	// depends on this value — it is part of the experimental setup — but
	// never on DRESCWorkers (DESIGN.md section 8h).
	DRESCRestarts int
	// DRESCWorkers bounds the goroutines racing those chains (0: GOMAXPROCS).
	// Wall-clock only; results are byte-identical at any value.
	DRESCWorkers int
	// Trace, when non-nil, is attached to the context of every mapper run so
	// the engines' per-pass spans reach its sink (the experiments binary's
	// -trace flag feeds a JSONL sink here). Sinks must be safe for concurrent
	// emit when Workers > 1; obs sinks are.
	Trace *obs.Tracer
}

// runCtx returns the context one mapper run executes under.
func (c Config) runCtx() (context.Context, context.CancelFunc) {
	ctx := obs.With(context.Background(), c.Trace)
	if c.Timeout > 0 {
		return context.WithTimeout(ctx, c.Timeout)
	}
	return ctx, func() {}
}

// workerCount normalizes the Workers knob.
func (c Config) workerCount() int {
	if c.Workers <= 1 {
		return 1
	}
	return c.Workers
}

// runIndexed evaluates fn(0..n-1) with up to workers goroutines and returns
// the results in index order, so parallel suite execution is deterministic.
func runIndexed[T any](workers, n int, fn func(int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Paper4x4 is the evaluation's default array: 4x4 mesh, 4 registers per PE.
func Paper4x4(regs int) Config { return Config{Rows: 4, Cols: 4, Regs: regs} }

// CGRA materializes the configured array. An Arch value wins over the shape
// fields; when it is set and Regs is non-zero, "regs N" is appended to the
// description (later statements win), so the register sweeps compose with
// any zoo member.
func (c Config) CGRA() *arch.CGRA {
	if c.Arch != "" {
		adl := c.Arch
		if src, _, ok := arch.ArchSource(c.Arch); ok {
			adl = src
		}
		if c.Regs > 0 {
			adl = fmt.Sprintf("%s; regs %d", adl, c.Regs)
		}
		d, err := arch.ParseDesc(adl)
		if err != nil {
			panic(err)
		}
		cg, err := d.Compile()
		if err != nil {
			panic(err)
		}
		return cg
	}
	rows, cols := c.Rows, c.Cols
	if rows == 0 {
		rows = 4
	}
	if cols == 0 {
		cols = 4
	}
	return arch.NewMesh(rows, cols, c.Regs)
}

// coreOptions returns the REGIMap options one mapper run uses: the base
// configuration plus the clique worker count.
func (c Config) coreOptions() core.Options {
	return core.Options{Clique: clique.Options{Workers: c.CliqueWorkers}}
}

func (c Config) drescOptions() dresc.Options {
	o := dresc.Options{Seed: c.Seed, Restarts: c.DRESCRestarts, Workers: c.DRESCWorkers}
	if c.Quick {
		o.MovesPerTemperature = 6 * 16
		o.Cooling = 0.8
	}
	return o
}

// LoopRow is one (kernel, mapper) measurement — a row of Figure 6 and the
// unit all other experiments aggregate.
type LoopRow struct {
	Kernel      string
	Group       kernels.Boundedness
	Ops         int
	Mapper      Mapper
	MII, II     int
	Perf        float64 // MII/II; 0 on failure
	IPC         float64 // ops per cycle achieved; 0 on failure
	CompileTime time.Duration
	OK          bool
}

// RunLoop maps one kernel with one mapper on the configured array.
func RunLoop(k kernels.Kernel, mapper Mapper, cfg Config) LoopRow {
	d := k.Build()
	c := cfg.CGRA()
	row := LoopRow{
		Kernel: k.Name,
		Group:  kernels.Classify(d, c.NumPEs(), c.Rows),
		Ops:    d.N(),
		Mapper: mapper,
	}
	ctx, cancel := cfg.runCtx()
	defer cancel()
	switch mapper {
	case REGIMap:
		if cfg.Portfolio > 1 {
			m, stats, err := portfolio.Map(ctx, d, c, portfolio.Options{Attempts: cfg.Portfolio, Seed: cfg.Seed, Base: cfg.coreOptions()})
			row.MII, row.CompileTime = stats.MII, stats.Elapsed
			if err == nil {
				row.II, row.Perf, row.OK = stats.II, stats.Perf(), true
				row.IPC = m.IPC()
			}
			break
		}
		m, stats, err := core.Map(ctx, d, c, cfg.coreOptions())
		row.MII, row.CompileTime = stats.MII, stats.Elapsed
		if err == nil {
			row.II, row.Perf, row.OK = stats.II, stats.Perf(), true
			row.IPC = m.IPC()
		}
	case DRESC:
		p, stats, err := dresc.Map(ctx, d, c, cfg.drescOptions())
		row.MII, row.CompileTime = stats.MII, stats.Elapsed
		if err == nil {
			row.II, row.Perf, row.OK = stats.II, stats.Perf(), true
			row.IPC = float64(p.D.N()) / float64(stats.II)
		}
	case EMS:
		m, stats, err := ems.Map(ctx, d, c, ems.Options{})
		row.MII, row.CompileTime = stats.MII, stats.Elapsed
		if err == nil {
			row.II, row.Perf, row.OK = stats.II, stats.Perf(), true
			row.IPC = m.IPC()
		}
	default:
		panic("experiments: unknown mapper " + string(mapper))
	}
	return row
}

// suite returns the kernels of one boundedness group on the configured
// array, or all kernels when group is nil.
func suite(cfg Config, group *kernels.Boundedness) []kernels.Kernel {
	c := cfg.CGRA()
	var out []kernels.Kernel
	for _, k := range kernels.All() {
		if group == nil || kernels.Classify(k.Build(), c.NumPEs(), c.Rows) == *group {
			out = append(out, k)
		}
	}
	return out
}

func groupPtr(b kernels.Boundedness) *kernels.Boundedness { return &b }

// mean returns the arithmetic mean of xs (0 for empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// geomean returns the geometric mean of positive xs (0 for empty).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

func formatHeader(b *strings.Builder, title string) {
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(title)))
	b.WriteByte('\n')
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
