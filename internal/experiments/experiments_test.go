package experiments

import (
	"strings"
	"testing"
	"time"

	"regimap/internal/kernels"
)

func quickCfg(regs int) Config {
	return Config{Rows: 4, Cols: 4, Regs: regs, Quick: true}
}

func TestFigure2(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if r.IIWithRegisters != 2 {
		t.Errorf("II with registers = %d, want 2 (the paper's Figure 2d)", r.IIWithRegisters)
	}
	if r.IIWithoutRegisters <= r.IIWithRegisters {
		t.Errorf("II without registers = %d, must exceed %d", r.IIWithoutRegisters, r.IIWithRegisters)
	}
	if !r.SimulatedOK {
		t.Error("figure 2 mapping must simulate")
	}
	if !strings.Contains(r.Table(), "Figure 2") {
		t.Error("table header missing")
	}
}

func TestFigure5(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if r.CompatNodes != 8 {
		t.Errorf("compat nodes = %d, want 8 (4 ops x 2 PEs)", r.CompatNodes)
	}
	if r.ProductNodes != 16 {
		t.Errorf("product nodes = %d, want 16", r.ProductNodes)
	}
	if r.CompatNodes >= r.ProductNodes {
		t.Error("scheduling must prune the product graph")
	}
	if !strings.Contains(r.Table(), "compatibility graph") {
		t.Error("table malformed")
	}
}

func TestRunLoopAllMappers(t *testing.T) {
	k, _ := kernels.ByName("sphinx_dot")
	for _, mapper := range []Mapper{REGIMap, DRESC, EMS} {
		row := RunLoop(k, mapper, quickCfg(4))
		if !row.OK {
			t.Errorf("%s failed on sphinx_dot", mapper)
			continue
		}
		if row.II < row.MII || row.Perf <= 0 || row.Perf > 1 {
			t.Errorf("%s: implausible row %+v", mapper, row)
		}
		if row.CompileTime <= 0 {
			t.Errorf("%s: no compile time recorded", mapper)
		}
	}
}

func TestRunLoopUnknownMapperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k, _ := kernels.ByName("sphinx_dot")
	RunLoop(k, Mapper("bogus"), quickCfg(4))
}

// TestFigure6Shape asserts the paper's headline shape on the full suite:
// REGIMap at least matches DRESC on res-bounded loops (the paper reports a
// 1.89x advantage; our stronger annealing baseline narrows that — see
// EXPERIMENTS.md), achieves near-parity on rec-bounded loops, and compiles
// dramatically faster overall.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison, ~1 min")
	}
	// Full annealing budget: the compile-time comparison is only meaningful
	// against the DRESC configuration the other experiments report.
	r := Figure6(Config{Rows: 4, Cols: 4, Regs: 4})
	if r.RatioRes < 0.95 {
		t.Errorf("res-bounded perf ratio REGIMap/DRESC = %.2f, want >= ~1", r.RatioRes)
	}
	if r.RatioRec < 0.9 || r.RatioRec > 1.15 {
		t.Errorf("rec-bounded perf ratio = %.2f, want near parity", r.RatioRec)
	}
	var regTime, drescTime time.Duration
	regOK, drescOK := 0, 0
	for _, row := range r.Rows {
		switch row.Mapper {
		case REGIMap:
			regTime += row.CompileTime
			if row.OK {
				regOK++
			}
		case DRESC:
			drescTime += row.CompileTime
			if row.OK {
				drescOK++
			}
		}
	}
	if regOK < 22 {
		t.Errorf("REGIMap mapped only %d/24 kernels", regOK)
	}
	if drescTime < 3*regTime {
		t.Errorf("DRESC compile time %v not clearly above REGIMap %v", drescTime, regTime)
	}
	table := r.Table()
	if !strings.Contains(table, "geomean") || !strings.Contains(table, "fir8") {
		t.Error("Figure 6 table malformed")
	}
}

// TestRescheduleAblationShape asserts the Section 6.3 result: disabling the
// learning moves hurts res-bounded loops far more often than rec-bounded
// ones.
func TestRescheduleAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite ablation")
	}
	r := RescheduleAblation(quickCfg(4))
	if r.TotalRes == 0 || r.TotalRec == 0 {
		t.Fatal("ablation saw no loops")
	}
	resPct := percent(r.WorseRes, r.TotalRes)
	recPct := percent(r.WorseRec, r.TotalRec)
	if resPct < 50 {
		t.Errorf("only %.0f%% of res-bounded loops got worse without learning; paper ~90%%", resPct)
	}
	if recPct >= resPct {
		t.Errorf("rec-bounded loops hurt as much as res-bounded (%.0f%% vs %.0f%%)", recPct, resPct)
	}
	if !strings.Contains(r.Table(), "rescheduling") {
		t.Error("ablation table malformed")
	}
}

func TestPowerEfficiencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("maps the res-bounded suite")
	}
	r := PowerEfficiency(quickCfg(4))
	if r.MeanIPC <= 1 {
		t.Errorf("mean IPC = %.2f, want > 1 (pipelined loops)", r.MeanIPC)
	}
	if r.Estimate.EnergyRatio < 10 {
		t.Errorf("energy advantage = %.1fx, want the paper's order of magnitude", r.Estimate.EnergyRatio)
	}
	if !strings.Contains(r.Table(), "GOps/s") {
		t.Error("power table malformed")
	}
}

func TestSweepHelpers(t *testing.T) {
	pt := sweepPoint(quickCfg(4), REGIMap, kernels.RecBounded)
	if pt.Total == 0 || pt.Mapped == 0 {
		t.Fatalf("sweep point empty: %+v", pt)
	}
	if pt.MeanPerf <= 0 || pt.MeanPerf > 1 {
		t.Errorf("mean perf %v out of range", pt.MeanPerf)
	}
}

func TestRunIndexed(t *testing.T) {
	square := func(i int) int { return i * i }
	for _, workers := range []int{1, 3, 8, 100} {
		got := runIndexed(workers, 10, square)
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d (order must be preserved)", workers, i, v, i*i)
			}
		}
	}
	if got := runIndexed(4, 0, square); len(got) != 0 {
		t.Errorf("runIndexed with n=0 returned %v", got)
	}
}

// TestWorkersDeterministic pins the Workers contract: the concurrency knob
// changes wall-clock only, never results.
func TestWorkersDeterministic(t *testing.T) {
	serial, parallel := quickCfg(4), quickCfg(4)
	serial.Workers = 1
	parallel.Workers = 8
	a := sweepPoint(serial, REGIMap, kernels.RecBounded)
	b := sweepPoint(parallel, REGIMap, kernels.RecBounded)
	if a.MeanPerf != b.MeanPerf || a.Mapped != b.Mapped || a.Total != b.Total {
		t.Errorf("Workers changed results: serial %+v vs parallel %+v", a, b)
	}
}

// TestTimeoutBoundsRunLoop: an already-expired deadline must turn into a
// failed row, not a hang or a panic.
func TestTimeoutBoundsRunLoop(t *testing.T) {
	cfg := quickCfg(4)
	cfg.Timeout = time.Nanosecond
	k, _ := kernels.ByName("sphinx_dot")
	for _, mapper := range []Mapper{REGIMap, DRESC, EMS} {
		if row := RunLoop(k, mapper, cfg); row.OK {
			t.Errorf("%s mapped despite an expired deadline", mapper)
		}
	}
}

// TestPortfolioConfigMatchesSingle: routing RunLoop through the portfolio
// runner must reproduce the single-attempt result.
func TestPortfolioConfigMatchesSingle(t *testing.T) {
	k, _ := kernels.ByName("sphinx_dot")
	one := RunLoop(k, REGIMap, quickCfg(4))
	cfg := quickCfg(4)
	cfg.Portfolio = 4
	four := RunLoop(k, REGIMap, cfg)
	if one.II != four.II || one.MII != four.MII || one.OK != four.OK {
		t.Errorf("portfolio=4 row %+v diverges from single-attempt row %+v", four, one)
	}
}

func TestStatHelpers(t *testing.T) {
	if got := mean(nil); got != 0 {
		t.Error("mean(nil) != 0")
	}
	if got := mean([]float64{1, 3}); got != 2 {
		t.Error("mean broken")
	}
	if got := geomean([]float64{1, 4}); got != 2 {
		t.Error("geomean broken")
	}
	if got := geomean([]float64{1, 0}); got != 0 {
		t.Error("geomean must reject non-positives")
	}
	if percent(1, 0) != 0 {
		t.Error("percent(x, 0) must be 0")
	}
	for _, c := range []struct {
		d    time.Duration
		want string
	}{
		{2 * time.Second, "2.00s"},
		{3 * time.Millisecond, "3.0ms"},
		{5 * time.Microsecond, "5µs"},
	} {
		if got := fmtDuration(c.d); got != c.want {
			t.Errorf("fmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Regs: 4}.CGRA()
	if c.Rows != 4 || c.Cols != 4 {
		t.Error("Config must default to the paper's 4x4 array")
	}
	if Paper4x4(8).Regs != 8 {
		t.Error("Paper4x4 broken")
	}
}

func TestRegisterBenefitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("maps the suite twice")
	}
	r := RegisterBenefit(quickCfg(4))
	if r.TotalMapped < 22 {
		t.Fatalf("mapped only %d loops with registers", r.TotalMapped)
	}
	// The paper's thesis: registers strictly help. Every loop that maps both
	// ways must be at least as fast with registers, and the suite-wide
	// geomean must show a real gain.
	for _, row := range r.Rows {
		if row.IIWith > 0 && row.IIWithout > 0 && row.IIWithout < row.IIWith {
			t.Errorf("%s: II %d without registers beats %d with", row.Kernel, row.IIWithout, row.IIWith)
		}
	}
	if r.MeanSpeedup < 1.05 && r.FailWithout == 0 {
		t.Errorf("registers bought only %.2fx and no loop needed them", r.MeanSpeedup)
	}
	if !strings.Contains(r.Table(), "geomean speedup") {
		t.Error("table malformed")
	}
}

func TestWriteCSV(t *testing.T) {
	k, _ := kernels.ByName("sphinx_dot")
	rows := []LoopRow{RunLoop(k, REGIMap, quickCfg(4))}
	var buf strings.Builder
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kernel,group,ops,mapper,mii,ii,perf,ipc,compile_us,ok") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, "sphinx_dot,rec-bounded") {
		t.Errorf("CSV row missing: %q", out)
	}
}

func TestWriteSweepCSV(t *testing.T) {
	pt := sweepPoint(quickCfg(4), REGIMap, kernels.RecBounded)
	var buf strings.Builder
	if err := WriteSweepCSV(&buf, []SweepPoint{pt}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4,4,4,rec-bounded,REGIMap") {
		t.Errorf("sweep CSV malformed: %q", buf.String())
	}
}

func TestOptGapShape(t *testing.T) {
	cfg := quickCfg(4)
	cfg.Workers = 4
	cfg.Timeout = 3 * time.Second
	r := OptGap(cfg)
	ks := kernels.All()
	if len(r.Rows) != len(ks) {
		t.Fatalf("optgap rows = %d, want %d", len(r.Rows), len(ks))
	}
	proven := 0
	for i, row := range r.Rows {
		if row.Kernel != ks[i].Name {
			t.Fatalf("row %d is %s, want %s (kernel order lost)", i, row.Kernel, ks[i].Name)
		}
		if row.MII < 1 {
			t.Errorf("%s: MII=%d", row.Kernel, row.MII)
		}
		if row.LowerBound < row.MII {
			t.Errorf("%s: certified bound %d below MII %d", row.Kernel, row.LowerBound, row.MII)
		}
		if row.Proven {
			proven++
			if row.ExactII < row.MII {
				t.Errorf("%s: optimal II=%d beats MII=%d", row.Kernel, row.ExactII, row.MII)
			}
			if row.HeurII != 0 && row.Gap != row.HeurII-row.ExactII {
				t.Errorf("%s: gap=%d, want %d", row.Kernel, row.Gap, row.HeurII-row.ExactII)
			}
		} else if row.Gap != -1 {
			t.Errorf("%s: unproven row carries gap %d", row.Kernel, row.Gap)
		}
	}
	if proven != r.Audited {
		t.Errorf("Audited=%d but %d rows are proven", r.Audited, proven)
	}
	if r.Audited < 5 {
		t.Errorf("only %d certified optima under the quick budget; expected at least the small kernels", r.Audited)
	}
	if r.HeurOptimal > r.Audited {
		t.Errorf("HeurOptimal=%d exceeds Audited=%d", r.HeurOptimal, r.Audited)
	}
	if !strings.Contains(r.Table(), "Optimality gap") {
		t.Error("table header missing")
	}
}
