package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV streams per-loop rows as CSV (for plotting outside this repo):
// kernel, group, ops, mapper, MII, II, perf, IPC, compile_us, ok.
func WriteCSV(w io.Writer, rows []LoopRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kernel", "group", "ops", "mapper", "mii", "ii", "perf", "ipc", "compile_us", "ok"}); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			r.Kernel,
			r.Group.String(),
			strconv.Itoa(r.Ops),
			string(r.Mapper),
			strconv.Itoa(r.MII),
			strconv.Itoa(r.II),
			strconv.FormatFloat(r.Perf, 'f', 4, 64),
			strconv.FormatFloat(r.IPC, 'f', 3, 64),
			strconv.FormatInt(r.CompileTime.Microseconds(), 10),
			strconv.FormatBool(r.OK),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// WriteSweepCSV streams sweep points as CSV: rows, cols, regs, group,
// mapper, mean_perf, total_ms, mapped, total.
func WriteSweepCSV(w io.Writer, points []SweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rows", "cols", "regs", "group", "mapper", "mean_perf", "total_ms", "mapped", "total"}); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, p := range points {
		c := p.Config.CGRA()
		rec := []string{
			strconv.Itoa(c.Rows),
			strconv.Itoa(c.Cols),
			strconv.Itoa(p.Config.Regs),
			p.Group.String(),
			string(p.Mapper),
			strconv.FormatFloat(p.MeanPerf, 'f', 4, 64),
			strconv.FormatInt(p.TotalTime.Milliseconds(), 10),
			strconv.Itoa(p.Mapped),
			strconv.Itoa(p.Total),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}
