package experiments

import (
	"fmt"
	"strings"
	"time"

	"regimap/internal/core"
	"regimap/internal/exact"
	"regimap/internal/kernels"
)

// --- Optimality gap: the heuristic answer audited by the exact backend ------

// OptGapRow is one kernel's optimality audit: the heuristic II next to what
// the exact SAT backend could prove about the same (kernel, fabric) instance
// under its conflict budget.
type OptGapRow struct {
	Kernel string
	Group  kernels.Boundedness
	Ops    int
	MII    int

	// The exact side: best satisfiable II found (0: none within budget),
	// whether it is certified optimal, and the certified lower bound with
	// its class ("mii" binds any mapper, "chain" binds route-chain
	// mappings).
	ExactII    int
	Proven     bool
	LowerBound int
	BoundClass string
	ExactTime  time.Duration

	// The heuristic side (REGIMap under the same Config).
	HeurII   int // 0: failed
	HeurTime time.Duration

	// Gap is HeurII - ExactII when both sides produced a mapping and the
	// exact II is certified optimal: the cycles per iteration the heuristic
	// left on the table. -1 when the audit is inconclusive (no certified
	// optimum to compare against).
	Gap int
}

// OptGapResult audits the whole suite.
type OptGapResult struct {
	Config Config
	Budget int64
	Rows   []OptGapRow

	// Audited counts rows with a certified optimum; HeurOptimal counts the
	// audited rows where the heuristic already achieved it.
	Audited     int
	HeurOptimal int
}

// OptGap maps every kernel with REGIMap and with the exact backend and
// reports the certified optimality gap. Quick configs shrink the solver's
// conflict budget the way they shrink DRESC's annealing budget — more rows
// come back inconclusive, but the run finishes in smoke-test time. Kernels
// run concurrently under cfg.Workers; rows are collected in kernel order so
// the result is deterministic at any worker count.
func OptGap(cfg Config) OptGapResult {
	budget := int64(0) // exact.Options default
	if cfg.Quick {
		budget = 10_000
	}
	r := OptGapResult{Config: cfg, Budget: budget}
	ks := suite(cfg, nil)
	rows := runIndexed(cfg.workerCount(), len(ks), func(i int) OptGapRow {
		return optGapRow(ks[i], cfg, budget)
	})
	for _, row := range rows {
		r.Rows = append(r.Rows, row)
		if row.Proven {
			r.Audited++
			if row.HeurII != 0 && row.HeurII == row.ExactII {
				r.HeurOptimal++
			}
		}
	}
	return r
}

func optGapRow(k kernels.Kernel, cfg Config, budget int64) OptGapRow {
	d := k.Build()
	c := cfg.CGRA()
	row := OptGapRow{
		Kernel: k.Name,
		Group:  kernels.Classify(d, c.NumPEs(), c.Rows),
		Ops:    d.N(),
		Gap:    -1,
	}

	ctx, cancel := cfg.runCtx()
	start := time.Now()
	_, hstats, herr := core.Map(ctx, d, c, cfg.coreOptions())
	row.HeurTime = time.Since(start)
	cancel()
	if herr == nil {
		row.HeurII = hstats.II
	}

	ctx, cancel = cfg.runCtx()
	start = time.Now()
	_, xstats, _ := exact.Map(ctx, d, c, exact.Options{MaxConflicts: budget, Seed: cfg.Seed})
	row.ExactTime = time.Since(start)
	cancel()
	cert := xstats.Cert
	row.MII = cert.MII
	row.ExactII = cert.BestII
	row.Proven = cert.OptimalII != 0 && cert.OptimalII == cert.BestII
	row.LowerBound = cert.ProvenLowerBound
	row.BoundClass = cert.LowerBoundClass
	if row.Proven && row.HeurII != 0 {
		row.Gap = row.HeurII - row.ExactII
	}
	return row
}

// Table renders the audit.
func (r OptGapResult) Table() string {
	var b strings.Builder
	formatHeader(&b, fmt.Sprintf("Optimality gap — REGIMap audited by the exact SAT backend on %s", r.Config.CGRA()))
	fmt.Fprintf(&b, "%-16s %-12s %4s %4s  %-24s %-20s %s\n",
		"loop", "group", "ops", "MII", "exact (certificate)", "REGIMap", "gap")
	for _, row := range r.Rows {
		exactCell := "no mapping in budget"
		switch {
		case row.Proven:
			exactCell = fmt.Sprintf("II=%d optimal %s", row.ExactII, fmtDuration(row.ExactTime))
		case row.ExactII != 0:
			exactCell = fmt.Sprintf("II=%d, bound>=%d (%s)", row.ExactII, row.LowerBound, row.BoundClass)
		}
		heurCell := "failed"
		if row.HeurII != 0 {
			heurCell = fmt.Sprintf("II=%d %s", row.HeurII, fmtDuration(row.HeurTime))
		}
		gapCell := "n/a"
		if row.Gap >= 0 {
			gapCell = fmt.Sprintf("+%d", row.Gap)
			if row.Gap == 0 {
				gapCell = "optimal"
			}
		}
		fmt.Fprintf(&b, "%-16s %-12s %4d %4d  %-24s %-20s %s\n",
			row.Kernel, row.Group, row.Ops, row.MII, exactCell, heurCell, gapCell)
	}
	fmt.Fprintf(&b, "\ncertified optima: %d/%d kernels; heuristic already optimal on %d of those\n",
		r.Audited, len(r.Rows), r.HeurOptimal)
	return b.String()
}
