package experiments

import (
	"fmt"
	"strings"
	"time"

	"regimap/internal/core"
	"regimap/internal/kernels"
	"regimap/internal/obs"
)

// PhaseRow is one kernel's per-pass cost breakdown: where REGIMap's compile
// time went, split along the pass-pipeline boundaries (modulo scheduling,
// compatibility-graph construction, clique search, learn-from-failure
// rewriting). The durations come from the obs spans the pipeline emits
// (DESIGN.md section 8e), collected through an in-memory sink, so the table
// is the same data `-trace` writes as JSONL — just aggregated.
type PhaseRow struct {
	Kernel   string
	Ops      int
	MII, II  int
	IIsTried int // distinct II values escalated through ("ii.attempt" spans)
	Attempts int // schedule/place attempts (core.Stats.Attempts)
	OK       bool

	Total    time.Duration // end-to-end wall clock of the run
	Schedule time.Duration // "pass.schedule" spans
	Compat   time.Duration // "pass.compat" spans
	Clique   time.Duration // "pass.clique" spans
	Learn    time.Duration // "pass.learn" spans
}

// PhaseResult is the per-kernel phase breakdown over the whole suite — the
// per-phase cost accounting "Evaluation of CGRA Toolchains" (PAPERS.md)
// compares mappers by.
type PhaseResult struct {
	Rows []PhaseRow
}

// PhaseBreakdown maps every benchmark kernel with REGIMap, tracing each run
// into a private in-memory sink, and returns the per-pass time split. It
// ignores Config.Trace: each row needs its own isolated event stream to
// attribute durations to one kernel (a shared JSONL trace can be had by
// running the other experiments with -trace).
func PhaseBreakdown(cfg Config) PhaseResult {
	ks := suite(cfg, nil)
	rows := runIndexed(cfg.workerCount(), len(ks), func(i int) PhaseRow {
		return phaseRow(ks[i], cfg)
	})
	return PhaseResult{Rows: rows}
}

// phaseRow maps one kernel under a MemSink tracer and aggregates its spans.
func phaseRow(k kernels.Kernel, cfg Config) PhaseRow {
	d := k.Build()
	c := cfg.CGRA()
	sink := &obs.MemSink{}
	ctx, cancel := cfg.runCtx()
	defer cancel()
	ctx = obs.With(ctx, obs.New(sink))
	_, stats, err := core.Map(ctx, d, c, cfg.coreOptions())
	row := PhaseRow{
		Kernel:   k.Name,
		Ops:      d.N(),
		MII:      stats.MII,
		Attempts: stats.Attempts,
		Total:    stats.Elapsed,
		OK:       err == nil,
	}
	if err == nil {
		row.II = stats.II
	}
	durs := sink.DurByName()
	row.Schedule = durs["pass.schedule"]
	row.Compat = durs["pass.compat"]
	row.Clique = durs["pass.clique"]
	row.Learn = durs["pass.learn"]
	row.IIsTried = int(sink.CountByName()["ii.attempt"])
	return row
}

// Table renders the breakdown with a suite-total footer.
func (r PhaseResult) Table() string {
	var b strings.Builder
	formatHeader(&b, "Per-kernel phase-time breakdown (REGIMap pass pipeline)")
	fmt.Fprintf(&b, "%-16s %4s %4s %4s %4s %9s %10s %10s %10s %10s %10s\n",
		"kernel", "ops", "MII", "II", "IIs", "attempts", "total", "schedule", "compat", "clique", "learn")
	var sum PhaseRow
	for _, row := range r.Rows {
		ii := fmt.Sprintf("%d", row.II)
		if !row.OK {
			ii = "-"
		}
		fmt.Fprintf(&b, "%-16s %4d %4d %4s %4d %9d %10s %10s %10s %10s %10s\n",
			row.Kernel, row.Ops, row.MII, ii, row.IIsTried, row.Attempts,
			fmtDuration(row.Total), fmtDuration(row.Schedule), fmtDuration(row.Compat),
			fmtDuration(row.Clique), fmtDuration(row.Learn))
		sum.Attempts += row.Attempts
		sum.Total += row.Total
		sum.Schedule += row.Schedule
		sum.Compat += row.Compat
		sum.Clique += row.Clique
		sum.Learn += row.Learn
	}
	fmt.Fprintf(&b, "%-16s %4s %4s %4s %4s %9d %10s %10s %10s %10s %10s\n",
		"suite", "", "", "", "", sum.Attempts,
		fmtDuration(sum.Total), fmtDuration(sum.Schedule), fmtDuration(sum.Compat),
		fmtDuration(sum.Clique), fmtDuration(sum.Learn))
	if sum.Total > 0 {
		pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(sum.Total) }
		fmt.Fprintf(&b, "share of total: schedule %.1f%%, compat %.1f%%, clique %.1f%%, learn %.1f%%\n",
			pct(sum.Schedule), pct(sum.Compat), pct(sum.Clique), pct(sum.Learn))
	}
	return b.String()
}
