// Package benchjson parses `go test -bench` output into a stable JSON
// baseline shape and compares fresh bench output against a committed
// baseline. It is the library behind the tools/benchjson command; every
// helper returns wrapped errors (no printing, no os.Exit) so CI tooling and
// tests can reuse it and react to failures programmatically.
package benchjson

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's parsed metrics. NsPerOp/BytesPerOp/AllocsPerOp
// mirror testing.B's standard units; Metrics carries b.ReportMetric custom
// units (perf/loop, compile-µs/loop, ...).
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed BENCH_baseline.json shape.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// ErrRegression classifies a Compare failure: at least one benchmark
// regressed beyond the allowed factor. Detect it with errors.Is.
var ErrRegression = errors.New("benchmark regression beyond allowed factor")

// ErrNoBenchmarks classifies empty parse input: not a single benchmark line.
var ErrNoBenchmarks = errors.New("no benchmark lines in input")

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns name -> result. The -N
// GOMAXPROCS suffix is stripped so baselines transfer between machines.
// An input without any benchmark line is an ErrNoBenchmarks.
func Parse(r io.Reader) (map[string]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := map[string]Result{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines are: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		res := out[name] // merged: the same bench may appear in several passes
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %w", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading bench output: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchjson: %w", ErrNoBenchmarks)
	}
	return out, nil
}

// WriteBaseline marshals the parsed benchmarks and writes them to path.
func WriteBaseline(path, note string, benchmarks map[string]Result) error {
	b := Baseline{Note: note, Benchmarks: benchmarks}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: encoding baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchjson: writing baseline: %w", err)
	}
	return nil
}

// LoadBaseline reads and decodes a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: reading baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("benchjson: decoding baseline %s: %w", path, err)
	}
	return &base, nil
}

// CompareOptions bounds a Compare run.
type CompareOptions struct {
	// MaxRegress fails a benchmark whose ns/op exceeds baseline by this
	// factor (0: 1.30).
	MaxRegress float64
	// MinNs ignores benchmarks whose baseline ns/op is below this floor —
	// at -benchtime=1x their timing is scheduler noise (0: 100µs).
	MinNs float64
	// MaxAllocRegress fails a benchmark whose allocs/op or B/op exceed
	// baseline by this factor (0: memory comparison disabled). Unlike
	// timing, allocation counts are deterministic even at -benchtime=1x,
	// which is what makes this gate cheap enough for CI.
	MaxAllocRegress float64
	// MinAllocs skips the allocs/op check when the baseline count is below
	// this floor (0: 64) — tiny counts jitter with runtime internals.
	MinAllocs float64
	// MinBytes skips the B/op check when the baseline is below this floor
	// (0: 4096).
	MinBytes float64
}

// Verdict is one benchmark's comparison outcome.
type Verdict struct {
	Name      string
	Status    string // "ok", "FAIL", or "SKIP"
	Why       string // reason for a SKIP
	GotNs     float64
	RefNs     float64
	Ratio     float64
	Regressed bool
	// Fails names each regressed dimension ("time x1.45", "allocs x2.10",
	// "bytes x1.88"); empty unless Status is "FAIL".
	Fails []string
}

// Compare checks fresh results against a baseline, name by name in sorted
// order. The returned verdicts always cover every fresh benchmark; the error
// is non-nil (wrapping ErrRegression) iff any benchmark regressed beyond
// opts.MaxRegress.
func Compare(fresh map[string]Result, base *Baseline, opts CompareOptions) ([]Verdict, error) {
	maxRegress := opts.MaxRegress
	if maxRegress == 0 {
		maxRegress = 1.30
	}
	minNs := opts.MinNs
	if minNs == 0 {
		minNs = 100e3
	}
	minAllocs := opts.MinAllocs
	if minAllocs == 0 {
		minAllocs = 64
	}
	minBytes := opts.MinBytes
	if minBytes == 0 {
		minBytes = 4096
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)

	var verdicts []Verdict
	regressed := 0
	for _, name := range names {
		got := fresh[name]
		ref, ok := base.Benchmarks[name]
		switch {
		case !ok || ref.NsPerOp <= 0:
			verdicts = append(verdicts, Verdict{Name: name, Status: "SKIP", Why: "not in baseline", GotNs: got.NsPerOp})
		case ref.NsPerOp < minNs:
			verdicts = append(verdicts, Verdict{Name: name, Status: "SKIP",
				Why: fmt.Sprintf("baseline %.0f ns/op below noise floor", ref.NsPerOp), GotNs: got.NsPerOp, RefNs: ref.NsPerOp})
		default:
			v := Verdict{Name: name, Status: "ok", GotNs: got.NsPerOp, RefNs: ref.NsPerOp, Ratio: got.NsPerOp / ref.NsPerOp}
			if v.Ratio > maxRegress {
				v.Fails = append(v.Fails, fmt.Sprintf("time x%.2f", v.Ratio))
			}
			if opts.MaxAllocRegress > 0 {
				if ref.AllocsPerOp >= minAllocs {
					if r := got.AllocsPerOp / ref.AllocsPerOp; r > opts.MaxAllocRegress {
						v.Fails = append(v.Fails, fmt.Sprintf("allocs x%.2f", r))
					}
				}
				if ref.BytesPerOp >= minBytes {
					if r := got.BytesPerOp / ref.BytesPerOp; r > opts.MaxAllocRegress {
						v.Fails = append(v.Fails, fmt.Sprintf("bytes x%.2f", r))
					}
				}
			}
			if len(v.Fails) > 0 {
				v.Status = "FAIL"
				v.Regressed = true
				regressed++
			}
			verdicts = append(verdicts, v)
		}
	}
	if regressed > 0 {
		return verdicts, fmt.Errorf("benchjson: %d benchmark(s) regressed beyond allowed factors: %w", regressed, ErrRegression)
	}
	return verdicts, nil
}

// Report renders verdicts in the historical text format of the CLI.
func Report(w io.Writer, verdicts []Verdict) {
	for _, v := range verdicts {
		switch v.Status {
		case "SKIP":
			fmt.Fprintf(w, "SKIP %-40s %s\n", v.Name, v.Why)
		case "FAIL":
			fmt.Fprintf(w, "FAIL %-40s %12.0f ns/op  vs baseline %12.0f  (%s)\n", v.Name, v.GotNs, v.RefNs, strings.Join(v.Fails, ", "))
		default:
			fmt.Fprintf(w, "ok   %-40s %12.0f ns/op  vs baseline %12.0f  (x%.2f)\n", v.Name, v.GotNs, v.RefNs, v.Ratio)
		}
	}
}
