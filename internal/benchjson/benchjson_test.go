package benchjson

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkMapREGIMap/fir8-8   	      10	 1200000 ns/op	  2048 B/op	      12 allocs/op
BenchmarkScheduler-8         	    1000	  150000 ns/op	     3.50 perf/loop
not a benchmark line
BenchmarkTiny-8              	 1000000	      90 ns/op
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkMapREGIMap/fir8"]
	if m.NsPerOp != 1200000 || m.BytesPerOp != 2048 || m.AllocsPerOp != 12 {
		t.Fatalf("parsed %+v", m)
	}
	if got["BenchmarkScheduler"].Metrics["perf/loop"] != 3.50 {
		t.Fatalf("custom metric lost: %+v", got["BenchmarkScheduler"])
	}
	if _, ok := got["BenchmarkScheduler-8"]; ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
}

func TestParseEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("no benches here\n")); !errors.Is(err, ErrNoBenchmarks) {
		t.Fatalf("want ErrNoBenchmarks, got %v", err)
	}
}

func TestParseBadValue(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-8 10 oops ns/op\n"))
	if err == nil || !strings.Contains(err.Error(), `bad value "oops"`) {
		t.Fatalf("got %v", err)
	}
}

func TestBaselineRoundTripAndCompare(t *testing.T) {
	parsed, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, "test note", parsed); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Note != "test note" || len(base.Benchmarks) != 3 {
		t.Fatalf("baseline = %+v", base)
	}

	// Identical results: everything ok or skipped, no error.
	verdicts, err := Compare(parsed, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Verdict{}
	for _, v := range verdicts {
		byName[v.Name] = v
	}
	if byName["BenchmarkMapREGIMap/fir8"].Status != "ok" {
		t.Fatalf("verdicts = %+v", verdicts)
	}
	if byName["BenchmarkTiny"].Status != "SKIP" {
		t.Fatal("sub-noise-floor benchmark not skipped")
	}

	// A 2x slowdown on the slow benchmark must regress.
	slower := map[string]Result{"BenchmarkMapREGIMap/fir8": {NsPerOp: 2400000}}
	verdicts, err = Compare(slower, base, CompareOptions{})
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("want ErrRegression, got %v", err)
	}
	if len(verdicts) != 1 || !verdicts[0].Regressed {
		t.Fatalf("verdicts = %+v", verdicts)
	}

	// The same slowdown under a permissive factor passes.
	if _, err := Compare(slower, base, CompareOptions{MaxRegress: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkBig":  {NsPerOp: 5e6, BytesPerOp: 1 << 20, AllocsPerOp: 5000},
		"BenchmarkLean": {NsPerOp: 5e6, BytesPerOp: 128, AllocsPerOp: 3},
	}}

	// Same timing but 2x the allocations and bytes: only fails when the
	// alloc gate is switched on.
	bloated := map[string]Result{"BenchmarkBig": {NsPerOp: 5e6, BytesPerOp: 2 << 20, AllocsPerOp: 10000}}
	if _, err := Compare(bloated, base, CompareOptions{}); err != nil {
		t.Fatalf("alloc gate off: %v", err)
	}
	verdicts, err := Compare(bloated, base, CompareOptions{MaxAllocRegress: 1.30})
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("want ErrRegression, got %v", err)
	}
	if len(verdicts) != 1 || len(verdicts[0].Fails) != 2 {
		t.Fatalf("want allocs+bytes failures, got %+v", verdicts)
	}
	for _, f := range verdicts[0].Fails {
		if !strings.Contains(f, "x2.00") {
			t.Fatalf("unexpected failure detail %q", f)
		}
	}

	// Sub-floor baselines are exempt: 3 allocs -> 9 allocs is runtime
	// jitter, not a regression.
	jitter := map[string]Result{"BenchmarkLean": {NsPerOp: 5e6, BytesPerOp: 384, AllocsPerOp: 9}}
	if _, err := Compare(jitter, base, CompareOptions{MaxAllocRegress: 1.30}); err != nil {
		t.Fatalf("sub-floor memory jitter failed the gate: %v", err)
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want error for a missing baseline")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteBaseline(bad, "", map[string]Result{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil || !strings.Contains(err.Error(), "decoding baseline") {
		t.Fatalf("got %v", err)
	}
}
