package viz

import (
	"context"
	"strings"
	"testing"

	"regimap/internal/arch"
	"regimap/internal/core"
	"regimap/internal/dfg"
	"regimap/internal/kernels"
	"regimap/internal/mapping"
)

func fig2DFG() *dfg.DFG {
	b := dfg.NewBuilder("fig2")
	a := b.Input("a")
	bb := b.Op(dfg.Neg, "b", a)
	c := b.Op(dfg.Neg, "c", bb)
	b.Op(dfg.Add, "d", c, a)
	return b.Build()
}

func TestDFGSVG(t *testing.T) {
	svg, err := DFG(fig2DFG())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "marker-end", `font-family="monospace"`, ">a<", ">input<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<rect") < 5 { // background + 4 nodes
		t.Error("too few boxes")
	}
}

func TestDFGSVGRecurrence(t *testing.T) {
	b := dfg.NewBuilder("acc")
	x := b.Input("x")
	acc := b.Op(dfg.Add, "acc", x)
	b.EdgeDist(acc, acc, 1, 1)
	d := b.Build()
	svg, err := DFG(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "d=1") {
		t.Error("recurrence distance label missing")
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("inter-iteration edge not dashed")
	}
}

func TestDFGSVGRejectsInvalid(t *testing.T) {
	bad := &dfg.DFG{Name: "bad", Nodes: []dfg.Node{{ID: 0, Name: "x", Kind: dfg.Add}}}
	if _, err := DFG(bad); err == nil {
		t.Fatal("accepted invalid DFG")
	}
}

func TestMappingSVG(t *testing.T) {
	m := mapping.New(fig2DFG(), arch.NewMesh(1, 2, 2), 2)
	m.Time = []int{0, 1, 2, 3}
	m.PE = []int{1, 0, 0, 1}
	svg, err := Mapping(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"II=2", "PE0 (0,0)", "register-carried"} {
		if !strings.Contains(svg, want) {
			t.Errorf("mapping SVG missing %q", want)
		}
	}
	// a->d is carried over 2 registers at II=2... span 3 -> ceil(3/2)=2.
	if !strings.Contains(svg, "2r") {
		t.Error("register annotation for the carried value missing")
	}
}

func TestMappingSVGRejectsInvalid(t *testing.T) {
	m := mapping.New(fig2DFG(), arch.NewMesh(1, 2, 2), 2)
	if _, err := Mapping(m); err == nil {
		t.Fatal("accepted unbound mapping")
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b&"c"`) != "a&lt;b&amp;&quot;c&quot;" {
		t.Errorf("escape broken: %q", escape(`a<b&"c"`))
	}
}

// TestSuiteRenders smoke-renders every kernel's DFG and one mapping.
func TestSuiteRenders(t *testing.T) {
	for _, k := range kernels.All() {
		if _, err := DFG(k.Build()); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
	k, _ := kernels.ByName("sphinx_dot")
	m, _, err := core.Map(context.Background(), k.Build(), arch.NewMesh(4, 4, 4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svg, err := Mapping(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(svg) < 2000 {
		t.Error("suspiciously small mapping SVG")
	}
}
