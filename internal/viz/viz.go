// Package viz renders the flow's artifacts as standalone SVG documents:
// data-flow graphs (layered by schedule level) and mapped kernels (the II x
// mesh grid with routing arrows), the pictures CGRA papers draw by hand —
// Figures 2 and 3 of the REGIMap paper are exactly these two views.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"regimap/internal/dfg"
	"regimap/internal/mapping"
)

// palette assigns stable colors by operation class.
func fillFor(k dfg.OpKind) string {
	switch k {
	case dfg.Const:
		return "#e8e8e8"
	case dfg.Input, dfg.Counter:
		return "#cfe8ff"
	case dfg.Load, dfg.Store:
		return "#ffd9b3"
	case dfg.Route:
		return "#f0f0f0"
	case dfg.Mul:
		return "#e6ccff"
	default:
		return "#d6f5d6"
	}
}

type svg struct {
	b    strings.Builder
	w, h int
}

func newSVG(w, h int) *svg {
	s := &svg{w: w, h: h}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	s.b.WriteString(`<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="6" markerHeight="6" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z" fill="#555"/></marker></defs>` + "\n")
	fmt.Fprintf(&s.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return s
}

func (s *svg) rect(x, y, w, h int, fill, stroke string, rx int) {
	fmt.Fprintf(&s.b, `<rect x="%d" y="%d" width="%d" height="%d" rx="%d" fill="%s" stroke="%s"/>`+"\n", x, y, w, h, rx, fill, stroke)
}

func (s *svg) text(x, y int, size int, anchor, str string) {
	fmt.Fprintf(&s.b, `<text x="%d" y="%d" font-size="%d" font-family="monospace" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(str))
}

func (s *svg) line(x1, y1, x2, y2 int, stroke string, dashed, arrow bool) {
	dash := ""
	if dashed {
		dash = ` stroke-dasharray="4,3"`
	}
	marker := ""
	if arrow {
		marker = ` marker-end="url(#arrow)"`
	}
	fmt.Fprintf(&s.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"%s%s/>`+"\n", x1, y1, x2, y2, stroke, dash, marker)
}

func (s *svg) done() string {
	s.b.WriteString("</svg>\n")
	return s.b.String()
}

func escape(str string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(str)
}

// DFG renders the data-flow graph layered by ASAP level: nodes as rounded
// boxes colored by operation class, intra-iteration dependences as solid
// arrows, inter-iteration dependences as dashed arrows labeled with their
// distance.
func DFG(d *dfg.DFG) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	asap, err := d.ASAP(d.RecMII())
	if err != nil {
		return "", err
	}
	// Columns within each level, ordered by node id for determinism.
	levels := map[int][]int{}
	maxLevel := 0
	for v, l := range asap {
		levels[l] = append(levels[l], v)
		if l > maxLevel {
			maxLevel = l
		}
	}
	const (
		boxW, boxH = 86, 30
		gapX, gapY = 20, 44
		margin     = 24
	)
	widest := 0
	for _, vs := range levels {
		sort.Ints(vs)
		if len(vs) > widest {
			widest = len(vs)
		}
	}
	width := margin*2 + widest*(boxW+gapX)
	height := margin*2 + (maxLevel+1)*(boxH+gapY)
	s := newSVG(width, height)

	pos := make([][2]int, d.N())
	for l := 0; l <= maxLevel; l++ {
		vs := levels[l]
		rowW := len(vs)*(boxW+gapX) - gapX
		x0 := (width - rowW) / 2
		for i, v := range vs {
			x := x0 + i*(boxW+gapX)
			y := margin + l*(boxH+gapY)
			pos[v] = [2]int{x, y}
			s.rect(x, y, boxW, boxH, fillFor(d.Nodes[v].Kind), "#444", 6)
			s.text(x+boxW/2, y+13, 10, "middle", d.Nodes[v].Name)
			s.text(x+boxW/2, y+25, 9, "middle", d.Nodes[v].Kind.String())
		}
	}
	for _, e := range d.Edges {
		from, to := pos[e.From], pos[e.To]
		x1, y1 := from[0]+boxW/2, from[1]+boxH
		x2, y2 := to[0]+boxW/2, to[1]
		if e.Dist > 0 && y2 <= y1 {
			// Back edge: route along the side.
			s.line(x1, y1, x1+boxW/2+8, y1+8, "#a33", true, false)
			s.line(x1+boxW/2+8, y1+8, x2-boxW/2-8, y2-8, "#a33", true, false)
			s.line(x2-boxW/2-8, y2-8, x2, y2, "#a33", true, true)
			s.text((x1+x2)/2, (y1+y2)/2, 9, "middle", fmt.Sprintf("d=%d", e.Dist))
			continue
		}
		s.line(x1, y1, x2, y2, "#555", e.Dist > 0, true)
		if e.Dist > 0 {
			s.text((x1+x2)/2+8, (y1+y2)/2, 9, "start", fmt.Sprintf("d=%d", e.Dist))
		}
	}
	return s.done(), nil
}

// Mapping renders the kernel as the paper's Figure 3 view: the mesh
// replicated once per modulo cycle (rows), each cell one PE slot, occupied
// cells labeled with their operation; one-cycle dependences drawn as arrows
// between adjacent cells, register-carried dependences as dashed arrows
// within a PE column.
func Mapping(m *mapping.Mapping) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	const (
		cellW, cellH = 80, 34
		gapX, gapY   = 8, 26
		labelW       = 64
		margin       = 24
	)
	cols := m.C.NumPEs()
	width := margin*2 + labelW + cols*(cellW+gapX)
	height := margin*2 + m.II*(cellH+gapY) + 18
	s := newSVG(width, height)

	cellPos := func(pe, slot int) (int, int) {
		return margin + labelW + pe*(cellW+gapX), margin + 18 + slot*(cellH+gapY)
	}
	// Header: PE coordinates.
	for pe := 0; pe < cols; pe++ {
		x, _ := cellPos(pe, 0)
		s.text(x+cellW/2, margin+8, 10, "middle", fmt.Sprintf("PE%d (%d,%d)", pe, m.C.RowOf(pe), m.C.ColOf(pe)))
	}
	// Grid and occupancy.
	occupant := map[[2]int]int{}
	for v := range m.D.Nodes {
		occupant[[2]int{m.PE[v], m.Slot(v)}] = v
	}
	for slot := 0; slot < m.II; slot++ {
		_, y := cellPos(0, slot)
		s.text(margin, y+cellH/2+4, 10, "start", fmt.Sprintf("t%%%d=%d", m.II, slot))
		for pe := 0; pe < cols; pe++ {
			x, y := cellPos(pe, slot)
			if v, ok := occupant[[2]int{pe, slot}]; ok {
				s.rect(x, y, cellW, cellH, fillFor(m.D.Nodes[v].Kind), "#333", 4)
				s.text(x+cellW/2, y+14, 10, "middle", m.D.Nodes[v].Name)
				s.text(x+cellW/2, y+27, 9, "middle", m.D.Nodes[v].Kind.String())
			} else {
				s.rect(x, y, cellW, cellH, "#fafafa", "#ccc", 4)
			}
		}
	}
	// Dependences.
	for _, e := range m.D.Edges {
		if e.From == e.To {
			continue
		}
		span := m.Span(e)
		x1, y1 := cellPos(m.PE[e.From], m.Slot(e.From))
		x2, y2 := cellPos(m.PE[e.To], m.Slot(e.To))
		carried := span > 1
		color := "#2a6"
		if carried {
			color = "#a33"
		}
		s.line(x1+cellW/2, y1+cellH, x2+cellW/2, y2, color, carried, true)
		if carried {
			s.text((x1+x2)/2+cellW/2+4, (y1+y2+cellH)/2, 9, "start", fmt.Sprintf("%dr", (span+m.II-1)/m.II))
		}
	}
	s.text(margin, height-8, 10, "start",
		fmt.Sprintf("%s on %s — II=%d, IPC=%.2f (green: out-register forward, red dashed: register-carried)",
			m.D.Name, m.C, m.II, m.IPC()))
	return s.done(), nil
}
