package obs

import "context"

// ctxKey is the private context key for the ambient tracer.
type ctxKey struct{}

// With returns a context carrying the tracer. Mappers fetch it once at entry
// with From, so the per-event cost is independent of context depth.
func With(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// From returns the context's tracer, or nil (the disabled tracer) when none
// was attached. The nil result is safe to use directly: every Tracer method
// no-ops on nil.
func From(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKey{}).(*Tracer)
	return t
}
