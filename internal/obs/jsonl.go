package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONLSink streams events as one JSON object per line, fields flattened to
// top-level keys:
//
//	{"name":"pass.compat","engine":"regimap","kernel":"fir8","start_us":412,"dur_us":96,"nodes":118,"edges":1034}
//
// Encoding is hand-rolled (names and keys are known-safe identifiers, values
// are integers) so a traced run does not pay encoding/json reflection per
// event. Safe for concurrent emit; call Close to flush.
type JSONLSink struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer // closed by Close when the destination is closable
}

// NewJSONLSink returns a sink writing to w. If w is an io.Closer, Close
// closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 0, 160)
	buf = append(buf, `{"name":`...)
	buf = strconv.AppendQuote(buf, e.Name)
	if e.Engine != "" {
		buf = append(buf, `,"engine":`...)
		buf = strconv.AppendQuote(buf, e.Engine)
	}
	if e.Kernel != "" {
		buf = append(buf, `,"kernel":`...)
		buf = strconv.AppendQuote(buf, e.Kernel)
	}
	buf = append(buf, `,"start_us":`...)
	buf = strconv.AppendInt(buf, e.Start.Microseconds(), 10)
	buf = append(buf, `,"dur_us":`...)
	buf = strconv.AppendInt(buf, e.Dur.Microseconds(), 10)
	for i := 0; i < e.NFields; i++ {
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, e.Fields[i].Key)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, e.Fields[i].Val, 10)
	}
	buf = append(buf, '}', '\n')
	s.w.Write(buf)
}

// Flush forces buffered lines out.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close flushes and closes the destination (when closable).
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}
