package obs

import (
	"testing"
)

func TestSumByName(t *testing.T) {
	sink := &MemSink{}
	tr := New(sink)
	tr.Point1("memo.hit", "n", 1)
	tr.Point1("memo.hit", "n", 1)
	tr.Point1("memo.miss", "n", 1)
	tr.Point("ii.attempt", "ii", 4, "round", 1, "", 0) // no "n" field
	sp := tr.Start("server.request")
	sp.Field("code", 200)
	sp.End()

	sums := sink.SumByName("n")
	if sums["memo.hit"] != 2 || sums["memo.miss"] != 1 {
		t.Fatalf("SumByName(n) = %v, want memo.hit=2 memo.miss=1", sums)
	}
	if _, ok := sums["ii.attempt"]; ok {
		t.Fatalf("event without the field appeared in the sums: %v", sums)
	}
	codes := sink.SumByName("code")
	if codes["server.request"] != 200 {
		t.Fatalf("SumByName(code) = %v", codes)
	}
	iis := sink.SumByName("ii")
	if iis["ii.attempt"] != 4 {
		t.Fatalf("SumByName(ii) = %v", iis)
	}
}

func TestCountByName(t *testing.T) {
	sink := &MemSink{}
	tr := New(sink)
	for i := 0; i < 3; i++ {
		tr.Point("ii.attempt", "ii", int64(2+i), "", 0, "", 0)
	}
	tr.Point1("memo.hit", "n", 1)
	counts := sink.CountByName()
	if counts["ii.attempt"] != 3 || counts["memo.hit"] != 1 {
		t.Fatalf("CountByName = %v", counts)
	}
	sink.Reset()
	if len(sink.CountByName()) != 0 {
		t.Fatal("Reset did not clear the counts")
	}
}

func TestTee(t *testing.T) {
	a, b := &MemSink{}, &MemSink{}
	tr := New(Tee(a, nil, b))
	tr.Point1("memo.hit", "n", 1)
	if got := a.SumByName("n")["memo.hit"]; got != 1 {
		t.Fatalf("first sink saw %d", got)
	}
	if got := b.SumByName("n")["memo.hit"]; got != 1 {
		t.Fatalf("second sink saw %d", got)
	}
	if Tee() != nil {
		t.Fatal("empty Tee is not nil")
	}
	if Tee(nil, a) != Sink(a) {
		t.Fatal("single-sink Tee does not collapse to the sink itself")
	}
}
