// Package obs is the observability layer threaded through every mapper: trace
// spans, point events, and integer fields describing what each pipeline pass
// did (schedule length, compatibility-graph size, clique search effort,
// learn-from-failure moves, annealing epochs, portfolio races, resilience
// rungs).
//
// The design goal is that instrumentation is free when nobody is looking. A
// nil *Tracer is the disabled state: every method on it returns immediately,
// spans are plain values, and no allocation happens on any emit path — the
// mappers therefore instrument unconditionally and callers opt in by putting
// a tracer into the context (With/From) or into an Options.Trace field for
// the context-free layers (sched, clique). BenchmarkObsNilSink and
// TestNilTracerZeroAlloc pin the 0 allocs/op contract.
//
// Event taxonomy (the Name field; see DESIGN.md section 8e):
//
//	mii                 MII analysis           fields: mii
//	ii.attempt          one II escalation step fields: ii, round
//	pass.schedule       modulo scheduling      fields: length, width, ok
//	pass.compat         compat-graph build     fields: nodes, edges
//	pass.clique         placement search       fields: placed, target
//	pass.learn          learn-from-failure     fields: move, inserts, thins
//	clique.find         generic clique engine  fields: seeds, swaps, intersections, best
//	clique.grouped      grouped constructive   fields: rounds, promoted, best
//	sched.schedule      one scheduler call     fields: ii, length, ok
//	dresc.anneal        one II annealing run   fields: ii, moves, accepts, ok
//	ems.place           one II greedy pass     fields: ii, placements, routes, ok
//	portfolio.window    one speculative window fields: lo, width, winner
//	resilient.rung      one ladder rung        fields: rung, round, ii, ok
//	map.done            end-to-end result      fields: ii, mii, attempts, ok
//	server.request      one /v1/map request    fields: code, cached, ok
//	server.shed         queue-full rejection   fields: n
//	server.panic        recovered handler panic fields: n
//	memo.hit            result served from cache fields: n
//	memo.miss           result computed fresh  fields: n
//	memo.collapse       duplicate collapsed onto an in-flight leader fields: n
//	job.submit          async job acknowledged fields: n
//	job.duplicate       submit deduplicated by idempotency key fields: n
//	job.start           job execution started  fields: n
//	job.done            job reached done       fields: n, attempts, degraded
//	job.fail            job reached failed     fields: n, attempts
//	job.retry           transient failure retried fields: n
//	job.degrade         submit downgraded past the queue watermark fields: n
//	job.recover         non-terminal job re-queued from the WAL fields: n
//	breaker.trip        an engine circuit opened fields: n
//	wal.compact         job WAL folded into a snapshot fields: n
//
// Counter events (the `n` family) carry their increment in the field, so a
// sink can total them with MemSink.SumByName instead of hand-looping.
//
// Every event carries the engine and kernel labels of the tracer that emitted
// it, a start offset relative to the tracer epoch, and a duration (zero for
// point events).
package obs

import (
	"sort"
	"sync"
	"time"
)

// maxFields bounds the inline field array of an Event. Spans drop fields
// beyond the bound rather than allocate; no current emitter exceeds it.
const maxFields = 8

// Field is one integer measurement attached to an event.
type Field struct {
	Key string
	Val int64
}

// Event is one trace record. Events are delivered to sinks by pointer for
// speed; a sink that retains an event must copy it.
type Event struct {
	Name    string        // taxonomy name, e.g. "pass.schedule"
	Engine  string        // emitting engine ("regimap", "ems", ...)
	Kernel  string        // kernel being mapped
	Start   time.Duration // offset from the tracer epoch
	Dur     time.Duration // span length (0 for point events)
	NFields int
	Fields  [maxFields]Field
}

// FieldVal returns the named field's value and whether it is present.
func (e *Event) FieldVal(key string) (int64, bool) {
	for i := 0; i < e.NFields; i++ {
		if e.Fields[i].Key == key {
			return e.Fields[i].Val, true
		}
	}
	return 0, false
}

// Sink receives completed events. Implementations must be safe for
// concurrent use: the portfolio racers and the parallel experiment drivers
// emit from many goroutines at once.
type Sink interface {
	Emit(e *Event)
}

// Tracer stamps events with shared labels and forwards them to a sink. The
// nil tracer is the disabled state — every method no-ops — so callers never
// branch on "is tracing on" themselves.
type Tracer struct {
	sink   Sink
	epoch  time.Time
	engine string
	kernel string
}

// New returns a tracer emitting to sink (nil sink: a nil, disabled tracer).
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Named returns a tracer with the engine and kernel labels set, sharing the
// parent's sink and epoch. Empty strings keep the parent's labels. Named on
// the nil tracer returns nil, preserving the disabled fast path.
func (t *Tracer) Named(engine, kernel string) *Tracer {
	if t == nil {
		return nil
	}
	child := *t
	if engine != "" {
		child.engine = engine
	}
	if kernel != "" {
		child.kernel = kernel
	}
	return &child
}

// Span is an in-flight timed region. The zero Span (from a nil tracer) is
// inert: Field and End on it do nothing and allocate nothing.
type Span struct {
	t     *Tracer
	start time.Time
	ev    Event
}

// Start opens a span. Close it with End (or EndOK); attach measurements with
// Field between the two.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	now := time.Now()
	s := Span{t: t, start: now}
	s.ev.Name = name
	s.ev.Engine = t.engine
	s.ev.Kernel = t.kernel
	s.ev.Start = now.Sub(t.epoch)
	return s
}

// Field attaches one integer measurement. Fields beyond the inline capacity
// are dropped (never allocated); returns the span for chaining.
func (s *Span) Field(key string, val int64) *Span {
	if s.t == nil || s.ev.NFields >= maxFields {
		return s
	}
	s.ev.Fields[s.ev.NFields] = Field{Key: key, Val: val}
	s.ev.NFields++
	return s
}

// FieldBool attaches a 0/1 measurement.
func (s *Span) FieldBool(key string, val bool) *Span {
	v := int64(0)
	if val {
		v = 1
	}
	return s.Field(key, v)
}

// End closes the span and delivers it. The event is copied to a fresh local
// before crossing the sink interface: passing &s.ev would make every Span
// escape to the heap, including on the disabled nil-tracer path.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	ev := s.ev
	ev.Dur = time.Since(s.start)
	s.t.sink.Emit(&ev)
}

// Point emits an instantaneous event with up to three fields — the fixed
// arity keeps the disabled path allocation-free (variadics would escape).
// Unused slots are skipped with an empty key.
func (t *Tracer) Point(name string, k1 string, v1 int64, k2 string, v2 int64, k3 string, v3 int64) {
	if t == nil {
		return
	}
	var e Event
	e.Name = name
	e.Engine = t.engine
	e.Kernel = t.kernel
	e.Start = time.Since(t.epoch)
	for _, f := range [3]Field{{k1, v1}, {k2, v2}, {k3, v3}} {
		if f.Key == "" {
			continue
		}
		e.Fields[e.NFields] = f
		e.NFields++
	}
	t.sink.Emit(&e)
}

// Point1 emits an instantaneous single-field event.
func (t *Tracer) Point1(name, key string, val int64) {
	t.Point(name, key, val, "", 0, "", 0)
}

// MemSink collects events in memory for post-run analysis (the experiments
// harness aggregates per-pass durations from it). Safe for concurrent emit.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends a copy of the event.
func (m *MemSink) Emit(e *Event) {
	m.mu.Lock()
	m.events = append(m.events, *e)
	m.mu.Unlock()
}

// Events returns a snapshot of everything recorded so far.
func (m *MemSink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Reset discards all recorded events.
func (m *MemSink) Reset() {
	m.mu.Lock()
	m.events = m.events[:0]
	m.mu.Unlock()
}

// DurByName sums event durations grouped by event name — the per-pass
// phase-time breakdown.
func (m *MemSink) DurByName() map[string]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]time.Duration{}
	for i := range m.events {
		out[m.events[i].Name] += m.events[i].Dur
	}
	return out
}

// SumByName sums the named integer field across all recorded events, grouped
// by event name — the counter aggregation the /metrics exporter and the
// experiments harness total Point events with. Events lacking the field
// contribute nothing (and create no entry on their own).
func (m *MemSink) SumByName(key string) map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]int64{}
	for i := range m.events {
		if v, ok := m.events[i].FieldVal(key); ok {
			out[m.events[i].Name] += v
		}
	}
	return out
}

// CountByName returns how many events were recorded per event name.
func (m *MemSink) CountByName() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]int64{}
	for i := range m.events {
		out[m.events[i].Name]++
	}
	return out
}

// Tee returns a sink fanning every event out to each non-nil sink, in order.
// It is how one emit stream feeds both a persistent trace (JSONLSink) and a
// live aggregation (MemSink) — the regimapd metrics path. Tee of zero or one
// usable sink returns that sink (or nil) directly, keeping the fan-out cost
// off degenerate configurations.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return teeSink(kept)
}

type teeSink []Sink

func (t teeSink) Emit(e *Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// Names returns the distinct event names recorded, sorted.
func (m *MemSink) Names() []string {
	byName := m.DurByName()
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
