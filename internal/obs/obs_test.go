package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Named("x", "y") != nil {
		t.Fatal("Named on nil tracer must stay nil")
	}
	s := tr.Start("pass.schedule")
	s.Field("length", 5).FieldBool("ok", true)
	s.End()
	tr.Point1("mii", "mii", 3)
	tr.Point("x", "a", 1, "b", 2, "c", 3)
}

// TestNilTracerZeroAlloc pins the disabled-instrumentation contract: the
// whole emit surface must not allocate when the tracer is nil. The mappers
// instrument unconditionally, so any allocation here would tax every
// untraced mapping.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("pass.schedule")
		sp.Field("length", 5)
		sp.FieldBool("ok", true)
		sp.End()
		tr.Point1("mii", "mii", 3)
		tr.Point("ii.attempt", "ii", 4, "round", 2, "", 0)
		_ = tr.Named("regimap", "fir8")
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer emit path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanAndPointDelivery(t *testing.T) {
	sink := &MemSink{}
	tr := New(sink).Named("regimap", "fir8")
	sp := tr.Start("pass.compat")
	sp.Field("nodes", 10).Field("edges", 44)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Point1("mii", "mii", 3)

	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	e := evs[0]
	if e.Name != "pass.compat" || e.Engine != "regimap" || e.Kernel != "fir8" {
		t.Fatalf("bad labels: %+v", e)
	}
	if v, ok := e.FieldVal("edges"); !ok || v != 44 {
		t.Fatalf("edges field = %d,%v", v, ok)
	}
	if _, ok := e.FieldVal("absent"); ok {
		t.Fatal("found a field that was never set")
	}
	if e.Dur <= 0 {
		t.Fatalf("span duration not recorded: %v", e.Dur)
	}
	if evs[1].Dur != 0 {
		t.Fatalf("point event has nonzero duration %v", evs[1].Dur)
	}
	if d := sink.DurByName()["pass.compat"]; d != e.Dur {
		t.Fatalf("DurByName = %v, want %v", d, e.Dur)
	}
	if names := sink.Names(); len(names) != 2 || names[0] != "mii" {
		t.Fatalf("Names = %v", names)
	}
}

func TestFieldOverflowDropsNotAllocates(t *testing.T) {
	sink := &MemSink{}
	tr := New(sink)
	sp := tr.Start("x")
	for i := 0; i < maxFields+5; i++ {
		sp.Field("k", int64(i))
	}
	sp.End()
	if n := sink.Events()[0].NFields; n != maxFields {
		t.Fatalf("NFields = %d, want %d", n, maxFields)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink).Named("regimap", "fir8")
	sp := tr.Start("pass.clique")
	sp.Field("placed", 12).Field("target", 12)
	sp.End()
	tr.Point1("mii", "mii", 2)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		if m["engine"] != "regimap" || m["kernel"] != "fir8" {
			t.Fatalf("labels missing: %s", line)
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["name"] != "pass.clique" || first["placed"] != float64(12) {
		t.Fatalf("bad first line: %s", lines[0])
	}
	if _, ok := first["dur_us"]; !ok {
		t.Fatalf("dur_us missing: %s", lines[0])
	}
}

func TestConcurrentEmit(t *testing.T) {
	sink := &MemSink{}
	var jl bytes.Buffer
	jsink := NewJSONLSink(&jl)
	tr := New(sink)
	jtr := New(jsink)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ltr := tr.Named("regimap", "k")
			for i := 0; i < 50; i++ {
				sp := ltr.Start("pass.schedule")
				sp.Field("length", int64(i))
				sp.End()
				jtr.Point1("mii", "mii", int64(g))
			}
		}(g)
	}
	wg.Wait()
	if err := jsink.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(sink.Events()); n != 8*50 {
		t.Fatalf("MemSink saw %d events, want %d", n, 8*50)
	}
	if n := strings.Count(jl.String(), "\n"); n != 8*50 {
		t.Fatalf("JSONL sink wrote %d lines, want %d", n, 8*50)
	}
}

func TestContextThreading(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context must yield the nil tracer")
	}
	tr := New(&MemSink{})
	ctx := With(context.Background(), tr)
	if From(ctx) != tr {
		t.Fatal("tracer not recovered from context")
	}
	if With(context.Background(), nil) != context.Background() {
		t.Fatal("With(nil) should be a no-op")
	}
}
